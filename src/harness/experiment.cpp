#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "harness/runner.h"
#include "util/assert.h"
#include "util/format.h"

namespace ringclu {

namespace {

/// Compact label form of one axis value ("8", "true", "Ring", ...).
std::string value_label(const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::Null: return "null";
    case JsonValue::Kind::Bool: return value.boolean ? "true" : "false";
    case JsonValue::Kind::Number: return json_number(value.number);
    case JsonValue::Kind::String: return value.string;
    case JsonValue::Kind::Array: return "[...]";
    case JsonValue::Kind::Object: return "{...}";
  }
  return "?";
}

/// Reads an optional non-negative integer member of "run".
void read_run_field(const JsonValue& run, std::string_view key,
                    std::optional<std::uint64_t>& out,
                    std::vector<std::string>& errors) {
  const JsonValue* member = run.find(key);
  if (member == nullptr) return;
  if (!member->is_number() || member->number < 0.0 ||
      member->number != std::floor(member->number)) {
    errors.push_back(str_format("run.%.*s: expected a non-negative integer",
                                static_cast<int>(key.size()), key.data()));
    return;
  }
  out = static_cast<std::uint64_t>(member->number);
}

}  // namespace

std::optional<ExperimentSpec> ExperimentSpec::from_json(
    std::string_view text, std::vector<std::string>* errors) {
  std::vector<std::string> local;
  std::vector<std::string>& out = errors != nullptr ? *errors : local;
  const std::size_t before = out.size();

  const std::optional<JsonValue> document = json_parse(text);
  if (!document) {
    out.push_back("sweep spec is not valid JSON");
    return std::nullopt;
  }
  if (!document->is_object()) {
    out.push_back("sweep spec must be a JSON object");
    return std::nullopt;
  }

  static constexpr std::string_view kValidKeys[] = {
      "sweep_schema", "name", "base", "axes", "benchmarks", "run"};
  for (const auto& [key, value] : document->object) {
    if (std::find(std::begin(kValidKeys), std::end(kValidKeys), key) ==
        std::end(kValidKeys)) {
      out.push_back(str_format(
          "unknown key '%s'; valid keys: sweep_schema, name, base, axes, "
          "benchmarks, run",
          key.c_str()));
    }
  }

  if (const JsonValue* schema = document->find("sweep_schema")) {
    if (!schema->is_number() ||
        schema->number != std::floor(schema->number)) {
      out.push_back("sweep_schema: expected an integer");
    } else if (schema->number > kSweepSchemaVersion) {
      out.push_back(str_format(
          "sweep_schema %s is newer than this build understands (%d)",
          json_number(schema->number).c_str(), kSweepSchemaVersion));
    }
  }

  ExperimentSpec spec;
  if (const JsonValue* name = document->find("name")) {
    if (!name->is_string()) {
      out.push_back("name: expected a string");
    } else {
      spec.name = name->string;
    }
  }

  if (const JsonValue* base = document->find("base")) {
    if (base->is_string()) {
      std::optional<ArchConfig> preset = ArchConfig::try_preset(base->string);
      if (!preset) {
        out.push_back(str_format(
            "base: unknown preset '%s' (want Arch_Nclus_Bbus_WIW; "
            "suffixes +SSA, @2cyc)",
            base->string.c_str()));
      } else {
        spec.base = *std::move(preset);
      }
    } else if (base->is_object()) {
      if (std::optional<ArchConfig> config =
              ArchConfig::from_json(*base, &out)) {
        spec.base = *std::move(config);
      }
    } else {
      out.push_back("base: expected a preset-name string or a config object");
    }
  }

  if (const JsonValue* axes = document->find("axes")) {
    if (!axes->is_array()) {
      out.push_back("axes: expected an array of {field, values} objects");
    } else {
      for (std::size_t i = 0; i < axes->array.size(); ++i) {
        const JsonValue& axis = axes->array[i];
        if (!axis.is_object()) {
          out.push_back(str_format("axes[%zu]: expected an object", i));
          continue;
        }
        for (const auto& [key, value] : axis.object) {
          if (key != "field" && key != "values") {
            out.push_back(str_format(
                "axes[%zu]: unknown key '%s'; valid keys: field, values", i,
                key.c_str()));
          }
        }
        const JsonValue* field = axis.find("field");
        const JsonValue* values = axis.find("values");
        if (field == nullptr || !field->is_string()) {
          out.push_back(
              str_format("axes[%zu].field: expected a field-name string", i));
          continue;
        }
        if (values == nullptr || !values->is_array() ||
            values->array.empty()) {
          out.push_back(str_format(
              "axes[%zu].values: expected a non-empty array", i));
          continue;
        }
        spec.axes.push_back(SweepAxis{field->string, values->array});
      }
    }
  }

  if (const JsonValue* benchmarks = document->find("benchmarks")) {
    if (!benchmarks->is_array()) {
      out.push_back("benchmarks: expected an array of benchmark names");
    } else {
      for (const JsonValue& benchmark : benchmarks->array) {
        if (!benchmark.is_string()) {
          out.push_back("benchmarks: expected benchmark-name strings");
          break;
        }
        spec.benchmarks.push_back(benchmark.string);
      }
      if (const std::optional<std::string> error =
              validate_benchmark_names(spec.benchmarks)) {
        out.push_back(*error);
      }
    }
  }

  if (const JsonValue* run = document->find("run")) {
    if (!run->is_object()) {
      out.push_back("run: expected an object {instrs, warmup, seed}");
    } else {
      for (const auto& [key, value] : run->object) {
        if (key != "instrs" && key != "warmup" && key != "seed") {
          out.push_back(str_format(
              "run: unknown key '%s'; valid keys: instrs, warmup, seed",
              key.c_str()));
        }
      }
      read_run_field(*run, "instrs", spec.instrs, out);
      read_run_field(*run, "warmup", spec.warmup, out);
      read_run_field(*run, "seed", spec.seed, out);
    }
  }

  // Expansion errors (bad axis fields, invalid points) are spec errors
  // too: a spec that cannot expand should fail at load time, not at
  // submit time.  The trial expansion runs even when parsing already
  // failed, so axis problems surface alongside the other errors — the
  // whole list in one pass.
  std::vector<std::string> expansion_errors;
  (void)spec.expand(&expansion_errors);
  out.insert(out.end(), expansion_errors.begin(), expansion_errors.end());
  if (out.size() != before) return std::nullopt;
  return spec;
}

std::size_t ExperimentSpec::cross_product_size() const {
  std::size_t total = 1;
  for (const SweepAxis& axis : axes) total *= axis.values.size();
  return total;
}

std::vector<ExperimentPoint> ExperimentSpec::expand(
    std::vector<std::string>* errors) const {
  std::vector<std::string> local;
  std::vector<std::string>& out = errors != nullptr ? *errors : local;
  const std::size_t before = out.size();

  std::vector<ExperimentPoint> points;
  std::map<std::string, std::size_t> by_fingerprint;  // -> index in points

  const std::size_t total = cross_product_size();
  std::vector<std::size_t> odometer(axes.size(), 0);
  for (std::size_t step = 0; step < total; ++step) {
    ArchConfig config = base;
    std::string label = base.name;
    std::vector<std::string> suffixes;
    bool ok = true;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const SweepAxis& axis = axes[a];
      const JsonValue& value = axis.values[odometer[a]];
      if (axis.field == "preset") {
        if (!value.is_string()) {
          out.push_back(str_format(
              "axis 'preset': expected preset-name strings, got %s",
              value_label(value).c_str()));
          ok = false;
          break;
        }
        std::optional<ArchConfig> preset =
            ArchConfig::try_preset(value.string);
        if (!preset) {
          out.push_back(str_format("axis 'preset': unknown preset '%s'",
                                   value.string.c_str()));
          ok = false;
          break;
        }
        config = *std::move(preset);
        label = value.string;
        suffixes.clear();  // A preset replaces everything set before it.
        continue;
      }
      if (std::optional<std::string> error =
              config.set_field(axis.field, value)) {
        out.push_back(*std::move(error));
        ok = false;
        break;
      }
      suffixes.push_back(axis.field + "=" + value_label(value));
    }

    // Advance the odometer (last axis fastest) before any `continue`.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++odometer[a] < axes[a].values.size()) break;
      odometer[a] = 0;
    }
    if (!ok) continue;

    const std::string point_name =
        suffixes.empty() ? label : label + "[" + join(suffixes, ",") + "]";
    config.name = point_name;
    if (std::vector<std::string> violations = config.try_validate();
        !violations.empty()) {
      for (const std::string& violation : violations) {
        out.push_back(
            str_format("point %s: %s", point_name.c_str(), violation.c_str()));
      }
      continue;
    }

    const std::string digest = config.fingerprint();
    if (const auto it = by_fingerprint.find(digest);
        it != by_fingerprint.end()) {
      points[it->second].aliases.push_back(point_name);
      continue;
    }
    by_fingerprint.emplace(digest, points.size());
    points.push_back(
        ExperimentPoint{point_name, std::move(config), {point_name}});
  }

  if (out.size() != before) return {};
  return points;
}

RunParams ExperimentSpec::resolve_params(const RunParams& defaults) const {
  RunParams params = defaults;
  if (instrs) params.instrs = *instrs;
  if (warmup) params.warmup = *warmup;
  if (seed) params.seed = *seed;
  return params;
}

std::string ExperimentSpec::points_to_json(
    const std::vector<ExperimentPoint>& points) {
  const auto make_string = [](std::string text) {
    JsonValue value;
    value.kind = JsonValue::Kind::String;
    value.string = std::move(text);
    return value;
  };
  JsonValue document;
  document.kind = JsonValue::Kind::Array;
  for (const ExperimentPoint& point : points) {
    JsonValue entry;
    entry.kind = JsonValue::Kind::Object;
    entry.object.emplace("name", make_string(point.name));
    JsonValue aliases;
    aliases.kind = JsonValue::Kind::Array;
    for (const std::string& alias : point.aliases) {
      aliases.array.push_back(make_string(alias));
    }
    entry.object.emplace("aliases", std::move(aliases));
    entry.object.emplace("fingerprint",
                         make_string(point.config.fingerprint()));
    // to_json output always parses; nest it as a real object.
    std::optional<JsonValue> config = json_parse(point.config.to_json());
    RINGCLU_ASSERT(config.has_value());
    entry.object.emplace("config", *std::move(config));
    document.array.push_back(std::move(entry));
  }
  return json_pretty(document);
}

std::vector<SimJob> make_sweep_jobs(const std::vector<ExperimentPoint>& points,
                                    const std::vector<std::string>& benchmarks,
                                    const RunParams& params,
                                    MetricSink* sink) {
  std::vector<SimJob> jobs;
  jobs.reserve(points.size() * benchmarks.size());
  for (const ExperimentPoint& point : points) {
    for (const std::string& benchmark : benchmarks) {
      jobs.push_back(SimJob{point.config, benchmark, params, sink});
    }
  }
  return jobs;
}

}  // namespace ringclu
