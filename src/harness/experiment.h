#pragma once

/// \file experiment.h
/// Declarative experiment definitions: a base configuration plus sweep
/// axes, expanded into named simulation jobs.
///
/// An ExperimentSpec is what `ringclu_sim --sweep spec.json` loads:
///
///   {
///     "sweep_schema": 1,
///     "name": "bus_sensitivity",
///     "base": "Ring_8clus_1bus_2IW",          // preset name, or an
///                                             // inline ArchConfig object
///     "axes": [
///       {"field": "num_buses", "values": [1, 2]},
///       {"field": "hop_latency", "values": [1, 2]}
///     ],
///     "benchmarks": ["gzip", "swim"],         // optional: suite default
///     "run": {"instrs": 200000, "warmup": 20000, "seed": 42}  // optional
///   }
///
/// An axis "field" is any dotted ArchConfig field (ArchConfig::field_names
/// lists them), or the special axis "preset" whose values replace the
/// whole base configuration — that is how a sweep declares the paper's
/// Table 3 matrix verbatim.  expand() walks the cross-product in
/// declaration order (the last axis varies fastest), names every point
/// deterministically, and collapses duplicate design points by config
/// fingerprint so one simulation serves all of them.  See DESIGN.md §9.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/arch_config.h"
#include "harness/sim_job.h"
#include "util/json.h"

namespace ringclu {

/// One sweep dimension: assign each of \p values to \p field in turn.
struct SweepAxis {
  std::string field;  ///< dotted ArchConfig field, or "preset"
  std::vector<JsonValue> values;
};

/// One expanded design point.  \c config.name == \c name (deterministic:
/// "<base>[axis=value,...]", or the preset name for pure preset points).
struct ExperimentPoint {
  std::string name;
  ArchConfig config;
  /// Every point name that collapsed onto this config (fingerprint
  /// duplicates), this point's own name first.
  std::vector<std::string> aliases;
};

/// Version of the sweep-spec JSON schema (the "sweep_schema" field).
inline constexpr int kSweepSchemaVersion = 1;

/// A declared experiment: base + axes + workloads + run control.
struct ExperimentSpec {
  std::string name = "sweep";
  ArchConfig base;
  std::vector<SweepAxis> axes;
  /// Benchmarks to run every point on; empty = the caller's default
  /// (ExperimentRunner::default_benchmarks in the CLI).
  std::vector<std::string> benchmarks;
  /// Run-control overrides; absent fields inherit the caller's defaults.
  std::optional<std::uint64_t> instrs;
  std::optional<std::uint64_t> warmup;
  std::optional<std::uint64_t> seed;

  /// Parses a sweep-spec document.  Same error contract as
  /// ArchConfig::from_json: every problem (unknown key, bad axis field,
  /// invalid expanded point, unknown benchmark) is appended to \p errors
  /// and nullopt is returned if there was any.
  [[nodiscard]] static std::optional<ExperimentSpec> from_json(
      std::string_view text, std::vector<std::string>* errors = nullptr);

  /// Size of the raw cross-product (before duplicate collapsing);
  /// 1 when there are no axes (the base alone).
  [[nodiscard]] std::size_t cross_product_size() const;

  /// Expands the cross-product into uniquely-named points, collapsing
  /// fingerprint duplicates (first name wins, the rest become aliases).
  /// Appends a message per invalid point/assignment to \p errors and
  /// returns an empty vector if there was any.
  [[nodiscard]] std::vector<ExperimentPoint> expand(
      std::vector<std::string>* errors = nullptr) const;

  /// The spec's run parameters over \p defaults (spec fields win).
  [[nodiscard]] RunParams resolve_params(const RunParams& defaults) const;

  /// The expanded points as a JSON array document (each element a full
  /// ArchConfig::to_json object plus its aliases) — the artifact
  /// `--sweep expand=<path>` writes.
  [[nodiscard]] static std::string points_to_json(
      const std::vector<ExperimentPoint>& points);
};

/// Builds the (point x benchmark) job list, point-major — the order
/// --matrix uses, so aggregation and progress reporting are shared.
[[nodiscard]] std::vector<SimJob> make_sweep_jobs(
    const std::vector<ExperimentPoint>& points,
    const std::vector<std::string>& benchmarks, const RunParams& params,
    MetricSink* sink = nullptr);

}  // namespace ringclu
