#include "harness/report.h"

#include <cmath>

#include "stats/metrics.h"
#include "trace/synth/suite.h"
#include "util/assert.h"
#include "util/format.h"

namespace ringclu {
namespace {

bool in_group(const SimResult& result, BenchGroup group) {
  // Trace-pack benchmarks ("trace:<stem>") are not part of the synthetic
  // SPEC suite, so they contribute to the overall average but to neither
  // the INT nor the FP sub-group.
  const bool in_suite = is_benchmark_name(result.benchmark);
  switch (group) {
    case BenchGroup::All: return true;
    case BenchGroup::Int: return in_suite && !is_fp_benchmark(result.benchmark);
    case BenchGroup::Fp: return in_suite && is_fp_benchmark(result.benchmark);
  }
  return false;
}

}  // namespace

std::string_view group_name(BenchGroup group) {
  switch (group) {
    case BenchGroup::All: return "AVERAGE";
    case BenchGroup::Int: return "INT";
    case BenchGroup::Fp: return "FP";
  }
  return "?";
}

double group_mean(std::span<const SimResult> results, BenchGroup group,
                  const std::function<double(const SimResult&)>& metric) {
  double sum = 0;
  int count = 0;
  for (const SimResult& result : results) {
    if (!in_group(result, group)) continue;
    sum += metric(result);
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

double group_mean(std::span<const SimResult> results, BenchGroup group,
                  std::string_view metric_name) {
  const MetricDesc& metric = MetricsRegistry::builtin().at(metric_name);
  return group_mean(results, group, metric.value);
}

double group_speedup(std::span<const SimResult> ring,
                     std::span<const SimResult> conv, BenchGroup group) {
  RINGCLU_EXPECTS(ring.size() == conv.size());
  double log_sum = 0;
  int count = 0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    RINGCLU_EXPECTS(ring[i].benchmark == conv[i].benchmark);
    if (!in_group(ring[i], group)) continue;
    const double ratio = ring[i].ipc() / conv[i].ipc();
    RINGCLU_EXPECTS(ratio > 0);
    log_sum += std::log(ratio);
    ++count;
  }
  return count == 0 ? 0.0 : std::exp(log_sum / count) - 1.0;
}

const SimResult* try_find_result(std::span<const SimResult> results,
                                 std::string_view benchmark) {
  for (const SimResult& result : results) {
    if (result.benchmark == benchmark) return &result;
  }
  return nullptr;
}

const SimResult* try_find_result(std::span<const SimResult> results,
                                 std::string_view config_name,
                                 std::string_view benchmark) {
  for (const SimResult& result : results) {
    if (result.config_name == config_name && result.benchmark == benchmark) {
      return &result;
    }
  }
  return nullptr;
}

const SimResult& find_result(std::span<const SimResult> results,
                             std::string_view benchmark) {
  const SimResult* result = try_find_result(results, benchmark);
  if (result == nullptr) {
    RINGCLU_UNREACHABLE("benchmark not present in result set");
  }
  return *result;
}

namespace {

struct WallTotals {
  double wall = 0.0;
  std::uint64_t instrs = 0;
};

/// Sums wall time and simulated instructions over results that carry
/// wall-time data (cache-loaded results have none and contribute nothing).
WallTotals sum_walled(std::span<const SimResult> results) {
  WallTotals totals;
  for (const SimResult& result : results) {
    if (result.wall_seconds <= 0.0) continue;
    totals.wall += result.wall_seconds;
    totals.instrs += result.total_committed;
  }
  return totals;
}

}  // namespace

double aggregate_sim_ips(std::span<const SimResult> results) {
  const WallTotals totals = sum_walled(results);
  return totals.wall <= 0.0
             ? 0.0
             : static_cast<double>(totals.instrs) / totals.wall;
}

std::string throughput_summary(std::span<const SimResult> results) {
  const WallTotals totals = sum_walled(results);
  if (totals.wall <= 0.0) {
    return "throughput: no wall-time data (cached results)";
  }
  return str_format("throughput: %.1fM simulated instrs in %.2fs = "
                    "%.2fM instrs/s",
                    static_cast<double>(totals.instrs) / 1e6, totals.wall,
                    static_cast<double>(totals.instrs) / totals.wall / 1e6);
}

}  // namespace ringclu
