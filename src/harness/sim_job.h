#pragma once

/// \file sim_job.h
/// The unit of work the simulation service schedules: one
/// (architecture, benchmark, run-parameters) triple, plus the cache-key
/// function that identifies equivalent jobs.  Two jobs with the same key
/// are guaranteed to produce bit-identical counters (the simulator is
/// deterministic), which is what makes duplicate coalescing and result
/// caching sound.

#include <cstdint>
#include <string>
#include <string_view>

#include "core/arch_config.h"
#include "core/sim_result.h"  // kSimSchemaVersion

namespace ringclu {

class MetricSink;

/// Run-control parameters.  instrs/warmup/seed determine the simulated
/// numbers and are part of the cache key; interval only controls
/// time-resolved sampling (sampling is read-only and never changes the
/// end-of-run counters), so it is deliberately outside the key.
struct RunParams {
  std::uint64_t instrs = 200000;  ///< measured instructions
  /// Warmup instructions (not measured).  Defaults to instrs/10 so a
  /// designated-initializer instrs override scales warmup with it, exactly
  /// like the documented RINGCLU_WARMUP default (20000 for the default
  /// 200000-instruction budget).
  std::uint64_t warmup = instrs / 10;
  std::uint64_t seed = 42;        ///< workload seed
  /// Metric-sampling period in committed instructions; 0 disables
  /// sampling (the default: byte-identical goldens, zero overhead).
  std::uint64_t interval = 0;
  /// Crash-resume snapshot cadence in committed instructions; 0 disables.
  /// Snapshotting is read-only (bit-identical results) and, like interval,
  /// outside the cache key.
  std::uint64_t snapshot_interval = 0;
};

/// Where (and whether) the harness checkpoints.  With a directory set,
/// run_sim_job restores a shared warmup checkpoint when one matches
/// (skipping warmup simulation entirely) and writes one after the first
/// cold warmup; jobs with params.snapshot_interval > 0 additionally drop
/// mid-measure snapshots for crash resume (picked up when \c resume).
/// Checkpointing never changes simulated numbers: restore is bit-identical
/// to a cold run, and any invalid/mismatched file falls back to cold.
struct CheckpointOptions {
  std::string dir = {};  ///< checkpoint directory; "" disables everything
  bool resume = false; ///< resume from mid-measure snapshots when present

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

/// One simulation request.
struct SimJob {
  ArchConfig config;
  std::string benchmark;
  RunParams params;
  /// Optional per-interval metrics consumer (non-owning; must outlive the
  /// service).  A job that streams (interval > 0 and a sink attached)
  /// always simulates: it is neither served from the result store nor
  /// coalesced with duplicates, so its sink sees the full series.
  MetricSink* sink = nullptr;

  /// True when this job produces a time-resolved metric stream.
  [[nodiscard]] bool streaming() const {
    return sink != nullptr && params.interval > 0;
  }
};

/// The identity of a job for caching and coalescing purposes.  Pinned
/// format (an interchange surface: keys are written into on-disk stores):
///   <config>|<benchmark>|<instrs>|<warmup>|<seed>|v<schema>
/// where <config> is ArchConfig::cache_identity(): the preset name for a
/// preset config, the "cfg<hex>" fingerprint for any other design point.
[[nodiscard]] std::string sim_cache_key(std::string_view config_name,
                                        std::string_view benchmark,
                                        const RunParams& params);

/// Key of \p job (convenience overload).
[[nodiscard]] std::string sim_cache_key(const SimJob& job);

/// Lifecycle of a submitted job, observed through JobHandle::status().
///
///   Queued -> Running -> Done
///   Queued -> Cancelled          (all interested handles cancelled, or
///                                 service destroyed first)
///   submit -> Failed             (rejected at submission, e.g. unknown
///                                 benchmark)
///   submit -> Done               (result served from the store or an
///                                 in-flight duplicate)
enum class JobStatus { Queued, Running, Done, Cancelled, Failed };

[[nodiscard]] std::string_view job_status_name(JobStatus status);

/// True for statuses that will never change again.
[[nodiscard]] constexpr bool job_status_terminal(JobStatus status) {
  return status == JobStatus::Done || status == JobStatus::Cancelled ||
         status == JobStatus::Failed;
}

}  // namespace ringclu
