#pragma once

/// \file report.h
/// Aggregation helpers that turn raw SimResults into the paper's figure
/// series: AVG / INT / FP group means and Ring-over-Conv speedups.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/sim_result.h"

namespace ringclu {

/// Benchmark grouping used by every bar chart in the paper.
enum class BenchGroup { All, Int, Fp };

[[nodiscard]] std::string_view group_name(BenchGroup group);

/// Arithmetic mean of \p metric over results whose benchmark is in
/// \p group.
[[nodiscard]] double group_mean(
    std::span<const SimResult> results, BenchGroup group,
    const std::function<double(const SimResult&)>& metric);

/// Registry-generic variant: mean of the registered metric named
/// \p metric_name (stats/metrics.h) over the group.  Any metric a figure,
/// sink or CLI column can name aggregates through this one entry point.
/// \pre the metric exists in the built-in registry.
[[nodiscard]] double group_mean(std::span<const SimResult> results,
                                BenchGroup group,
                                std::string_view metric_name);

/// Geometric mean of per-benchmark IPC ratios (ring[i]/conv[i]) over the
/// group; the standard "average speedup" figure.  \pre results are
/// benchmark-aligned.
[[nodiscard]] double group_speedup(std::span<const SimResult> ring,
                                   std::span<const SimResult> conv,
                                   BenchGroup group);

/// Looks up the result for \p benchmark; nullptr when absent.
[[nodiscard]] const SimResult* try_find_result(
    std::span<const SimResult> results, std::string_view benchmark);

/// Looks up the result for (\p config_name, \p benchmark); nullptr when
/// absent.  The graceful form for callers assembling views over batch
/// output (CLI tables, examples) where a missing pair is a reportable
/// condition, not a programming error.
[[nodiscard]] const SimResult* try_find_result(
    std::span<const SimResult> results, std::string_view config_name,
    std::string_view benchmark);

/// Looks up the result for \p benchmark.  \pre present (aborts when
/// absent — use try_find_result to handle absence gracefully).
[[nodiscard]] const SimResult& find_result(std::span<const SimResult> results,
                                           std::string_view benchmark);

/// Aggregate simulator throughput over a result set: total simulated
/// instructions (warmup included) divided by total recorded wall time.
/// Results without wall-time data (e.g. loaded from cache) contribute
/// nothing to either sum; returns 0 when no result carries wall time.
[[nodiscard]] double aggregate_sim_ips(std::span<const SimResult> results);

/// One-line human summary of aggregate_sim_ips over \p results, e.g.
/// "throughput: 11.4M simulated instrs in 9.31s = 1.23M instrs/s".
[[nodiscard]] std::string throughput_summary(
    std::span<const SimResult> results);

}  // namespace ringclu
