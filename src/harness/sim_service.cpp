#include "harness/sim_service.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <thread>

#include "core/checkpoint.h"
#include "core/processor.h"
#include "harness/runner.h"
#include "stats/metric_sink.h"
#include "trace/registry.h"
#include "trace/synth/suite.h"
#include "util/assert.h"
#include "util/format.h"
#include "util/rng.h"

namespace ringclu {

std::string sim_cache_key(std::string_view config_name,
                          std::string_view benchmark,
                          const RunParams& params) {
  return str_format("%.*s|%.*s|%llu|%llu|%llu|v%d",
                    static_cast<int>(config_name.size()), config_name.data(),
                    static_cast<int>(benchmark.size()), benchmark.data(),
                    static_cast<unsigned long long>(params.instrs),
                    static_cast<unsigned long long>(params.warmup),
                    static_cast<unsigned long long>(params.seed),
                    kSimSchemaVersion);
}

std::string sim_cache_key(const SimJob& job) {
  // cache_identity(): the preset name for genuine presets (byte-compatible
  // with every pre-existing store and golden), the config fingerprint for
  // anything hand-built or sweep-expanded — so identical design points
  // coalesce regardless of display name, and same-named-but-divergent
  // configs never collide.  Trace benchmarks key by their content digest
  // ("trace:<stem>@<16-hex>") for the same reason: a renamed pack still
  // coalesces, a re-recorded one never aliases stale results.
  return sim_cache_key(job.config.cache_identity(),
                       keyed_workload_name(job.benchmark), job.params);
}

std::string_view job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Done: return "done";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::Failed: return "failed";
  }
  RINGCLU_UNREACHABLE("bad JobStatus");
}

namespace {

/// Observer bridging Processor sampling to the job's MetricSink.
class SinkObserver final : public SimObserver {
 public:
  SinkObserver(MetricSink& sink, const MetricRunContext& context)
      : sink_(sink), context_(context) {}
  void on_interval(const IntervalSample& sample) override {
    sink_.on_interval(context_, sample);
  }

 private:
  MetricSink& sink_;
  const MetricRunContext& context_;
};

[[nodiscard]] double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SimResult run_sim_job(const SimJob& job) {
  return run_sim_job(job, CheckpointOptions{});
}

SimResult run_sim_job(const SimJob& job, const CheckpointOptions& checkpoint) {
  auto trace = make_workload_trace(job.benchmark, job.params.seed);
  return run_sim_job_on_trace(job, checkpoint, *trace);
}

SimResult run_sim_job_on_trace(const SimJob& job,
                               const CheckpointOptions& checkpoint,
                               TraceSource& trace) {
  // optional<> so the fallback paths can reconstruct after a failed
  // restore leaves the processor in an unspecified state (Processor is
  // non-copyable; the optional's inline storage keeps &*processor stable
  // across emplace, which the snapshot hook relies on).
  std::optional<Processor> processor;
  processor.emplace(job.config, job.params.seed);

  RunHooks hooks;
  std::optional<MetricRunContext> context;
  std::optional<SinkObserver> observer;
  if (job.streaming()) {
    context.emplace(
        MetricRunContext{job.config.name, job.benchmark, job.params.interval,
                         job.params.seed});
    observer.emplace(*job.sink, *context);
    hooks.observer = &*observer;
    hooks.interval_instrs = job.params.interval;
  }

  SimResult result;
  if (!checkpoint.enabled()) {
    result = processor->run(trace, job.params.warmup, job.params.instrs,
                            hooks);
  } else {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint.dir, ec);

    const CheckpointExpectation expect{job.config.fingerprint(),
                                       std::string(trace.name()),
                                       job.params.seed};
    const std::string warm_path =
        checkpoint.dir + "/" +
        warmup_checkpoint_name(expect.config_fingerprint, expect.workload,
                               job.params.warmup, job.params.seed);
    const std::string snapshot_path =
        checkpoint.dir + "/" + snapshot_checkpoint_name(sim_cache_key(job));

    const double run_start = wall_now();
    double restored_prefix = 0.0;  ///< wall cost of the restored prefix
    double restore_cost = 0.0;
    bool resumed_snapshot = false;
    bool restored_warmup = false;

    // A failed restore may leave processor/trace partially mutated:
    // reconstruct both so every fallback starts truly cold.
    const auto attempt_restore = [&](const std::string& path,
                                     CheckpointMeta& meta) {
      std::string error;
      if (restore_checkpoint(path, *processor, trace, expect, &meta,
                             &error)) {
        return true;
      }
      processor.emplace(job.config, job.params.seed);
      trace.reset();
      return false;
    };

    // 1. Crash resume: continue an interrupted measurement mid-stream.
    //    A snapshot that is not mid-measure cannot be continued soundly
    //    (the measurement baseline is gone) — treat it as unusable.
    if (checkpoint.resume) {
      CheckpointMeta meta;
      const bool restored = attempt_restore(snapshot_path, meta);
      if (restored && processor->mid_measure()) {
        resumed_snapshot = true;
        restored_prefix = meta.prefix_wall_seconds;
        restore_cost = wall_now() - run_start;
        processor->add_pre_run_wall_seconds(restore_cost);
      } else if (restored) {
        processor.emplace(job.config, job.params.seed);
        trace.reset();
      }
    }

    // 2. Warmup: restore the shared checkpoint, else simulate warmup cold
    //    and publish it for the other sweep points of this workload.
    if (!resumed_snapshot) {
      CheckpointMeta meta;
      if (job.params.warmup > 0 && attempt_restore(warm_path, meta)) {
        restored_warmup = true;
        restored_prefix = meta.prefix_wall_seconds;
        restore_cost = wall_now() - run_start;
        processor->add_pre_run_wall_seconds(restore_cost);
      } else {
        processor->warmup(trace, job.params.warmup);
        if (job.params.warmup > 0) {
          CheckpointMeta save_meta;
          save_meta.seed = job.params.seed;
          save_meta.prefix_wall_seconds = wall_now() - run_start;
          std::string error;
          if (!save_checkpoint(warm_path, *processor, trace, save_meta,
                               &error)) {
            std::fprintf(stderr,
                         "[ringclu] warmup checkpoint write failed (%s); "
                         "continuing without\n",
                         error.c_str());
          }
        }
      }
    }

    // 3. Periodic mid-measure snapshots for crash resume.
    if (job.params.snapshot_interval > 0) {
      hooks.snapshot_interval_instrs = job.params.snapshot_interval;
      hooks.on_snapshot = [&] {
        CheckpointMeta snap_meta;
        snap_meta.seed = job.params.seed;
        snap_meta.prefix_wall_seconds =
            restored_prefix + (wall_now() - run_start);
        std::string error;
        if (!save_checkpoint(snapshot_path, *processor, trace, snap_meta,
                             &error)) {
          std::fprintf(stderr,
                       "[ringclu] snapshot write failed (%s); "
                       "continuing without\n",
                       error.c_str());
        }
      };
    }

    result = processor->measure(trace, job.params.instrs, hooks);
    result.warmup_restored = restored_warmup || resumed_snapshot;
    if (result.warmup_restored) {
      // What the restored prefix cost to simulate cold, minus what the
      // restore itself cost: the measured saving of this run.
      result.warmup_amortized_seconds =
          std::max(0.0, restored_prefix - restore_cost);
    }
    // The run finished: its crash-resume snapshot is spent.
    if (job.params.snapshot_interval > 0 || checkpoint.resume) {
      std::filesystem::remove(snapshot_path, ec);
    }
  }

  if (job.streaming()) job.sink->on_run_complete(*context, result);
  return result;
}

/// Shared per-job state.  All fields are guarded by the owning service's
/// mutex_, except \c result and \c error which become immutable once
/// \c status is terminal (readers synchronize through the mutex first).
struct JobHandle::JobState {
  SimService* service = nullptr;
  std::string key;
  SimJob job;
  JobStatus status = JobStatus::Queued;
  SimResult result;
  std::string error;
  /// Attached handles that have not cancelled.
  std::size_t waiters = 0;
  std::vector<std::function<void(const SimResult&)>> callbacks;
  /// Shard queue this job was enqueued on (always 0 when unsharded).
  std::size_t shard = 0;
  /// Submission index, for the ordered store flush (sharded mode).
  std::uint64_t order = 0;
};

// ---- JobHandle --------------------------------------------------------

JobStatus JobHandle::status() const {
  RINGCLU_EXPECTS(valid());
  const std::lock_guard<std::mutex> lock(core_->state->service->mutex_);
  return core_->cancelled ? JobStatus::Cancelled : core_->state->status;
}

const std::string& JobHandle::key() const {
  RINGCLU_EXPECTS(valid());
  return core_->state->key;  // Immutable after construction.
}

const SimResult& JobHandle::result() const {
  RINGCLU_EXPECTS(valid());
  const std::lock_guard<std::mutex> lock(core_->state->service->mutex_);
  RINGCLU_EXPECTS(!core_->cancelled &&
                  core_->state->status == JobStatus::Done);
  return core_->state->result;
}

std::optional<SimResult> JobHandle::try_result() const {
  RINGCLU_EXPECTS(valid());
  const std::lock_guard<std::mutex> lock(core_->state->service->mutex_);
  if (core_->cancelled || core_->state->status != JobStatus::Done) {
    return std::nullopt;
  }
  return core_->state->result;
}

const std::string& JobHandle::error() const {
  RINGCLU_EXPECTS(valid());
  const std::lock_guard<std::mutex> lock(core_->state->service->mutex_);
  RINGCLU_EXPECTS(core_->state->status == JobStatus::Failed);
  return core_->state->error;
}

// ---- SimService -------------------------------------------------------

namespace {

std::unique_ptr<ResultStore> store_from_runner_options(
    const RunnerOptions& options) {
  return make_result_store(options.cache_backend, options.cache_path,
                           options.verbose);
}

SimServiceOptions service_options_from_runner(const RunnerOptions& options) {
  SimServiceOptions service_options;
  service_options.threads = options.threads;
  service_options.shards = options.shards;
  service_options.pin_workers = options.pin_workers;
  service_options.force = options.force;
  service_options.verbose = options.verbose;
  service_options.checkpoint = options.checkpoint_options();
  return service_options;
}

/// Best-effort affinity: pin the calling thread to one CPU.  Linux only;
/// failures (and unknown hardware concurrency) are silently ignored —
/// pinning is a locality hint, never a correctness requirement.
void pin_current_thread(std::size_t cpu) {
#ifdef __linux__
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % hw, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace

std::size_t SimService::shard_for_key(std::string_view key, int shards) {
  RINGCLU_EXPECTS(shards > 0);
  return fnv1a(key) % static_cast<std::size_t>(shards);
}

SimService::SimService(std::unique_ptr<ResultStore> store,
                       SimServiceOptions options)
    : options_(options), store_(std::move(store)) {
  RINGCLU_EXPECTS(store_ != nullptr);
  RINGCLU_EXPECTS(options_.shards >= 0);
  if (options_.threads <= 0) options_.threads = default_thread_count();
  paused_ = options_.start_paused;
  const std::size_t shard_count =
      options_.shards > 0 ? static_cast<std::size_t>(options_.shards) : 1;
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->workers.reserve(worker_quota(s));
  }
}

std::size_t SimService::worker_quota(std::size_t shard) const {
  const std::size_t threads = static_cast<std::size_t>(options_.threads);
  const std::size_t count =
      options_.shards > 0 ? static_cast<std::size_t>(options_.shards) : 1;
  const std::size_t quota = threads / count + (shard < threads % count);
  return quota > 0 ? quota : 1;
}

void SimService::spawn_worker_locked(std::size_t shard) {
  Shard& s = *shards_[shard];
  if (s.workers.size() < worker_quota(shard)) {
    s.workers.emplace_back([this, shard] { worker_loop(shard); });
  }
}

SimService::SimService(const RunnerOptions& options)
    : SimService(store_from_runner_options(options),
                 service_options_from_runner(options)) {}

SimService::~SimService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      for (const std::shared_ptr<JobState>& state : shard->queue) {
        state->status = JobStatus::Cancelled;
        unindex_locked(state);
        // Park a null flush entry so any still-running job behind this
        // index can flush its result before its worker exits.
        if (ordered_puts()) pending_flush_.emplace(state->order, nullptr);
      }
      shard->queue.clear();
    }
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->work_cv.notify_all();
  }
  done_cv_.notify_all();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (std::thread& worker : shard->workers) worker.join();
  }
}

JobHandle SimService::submit(SimJob job) { return submit_one(std::move(job)); }

std::vector<JobHandle> SimService::submit_batch(std::vector<SimJob> jobs) {
  // Cache-aware batching: group the batch by benchmark before enqueueing,
  // so duplicate keys sit back to back (coalesced on submission) and any
  // future per-workload state reuse sees its jobs adjacent.  Handles are
  // still returned in the caller's order.
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&jobs](std::size_t a, std::size_t b) {
                     return jobs[a].benchmark < jobs[b].benchmark;
                   });

  std::size_t queued_before = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queued_before = total_accepted_;
  }
  std::vector<JobHandle> handles(jobs.size());
  std::uint64_t instrs = 0;
  for (const std::size_t index : order) {
    instrs = jobs[index].params.instrs;
    handles[index] = submit_one(std::move(jobs[index]));
  }
  if (options_.verbose) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t newly_queued = total_accepted_ - queued_before;
    if (newly_queued != 0) {
      std::fprintf(stderr,
                   "[ringclu] simulating %zu run(s) (%llu instrs each, "
                   "%d thread(s)%s)...\n",
                   newly_queued, static_cast<unsigned long long>(instrs),
                   options_.threads,
                   ordered_puts()
                       ? str_format(", %zu shard(s)", shards_.size()).c_str()
                       : "");
    }
  }
  return handles;
}

JobHandle SimService::submit_one(SimJob&& job) {
  auto make_handle = [](std::shared_ptr<JobState> state) {
    auto core = std::make_shared<JobHandle::Core>();
    core->state = std::move(state);
    ++core->state->waiters;
    return JobHandle(std::move(core));
  };

  auto state = std::make_shared<JobState>();
  state->service = this;
  state->job = std::move(job);
  state->key = sim_cache_key(state->job);

  if (const std::optional<std::string> error =
          validate_benchmark_names({state->job.benchmark})) {
    state->status = JobStatus::Failed;
    state->error = *error;
    return make_handle(std::move(state));
  }

  // Streaming jobs (an attached sink + sampling interval) always
  // simulate: a store hit or a coalesced duplicate would leave their sink
  // without the interval series.  They also never register in the
  // coalescing index, so later duplicates do not attach to them either.
  const bool streaming = state->job.streaming();

  // Coalesce with an identical queued/running job.
  if (!streaming) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto in_flight = in_flight_.find(state->key);
    if (in_flight != in_flight_.end()) {
      ++coalesced_;
      return make_handle(in_flight->second);
    }
  }

  // Serve from the store (skipped under force).  The read — possibly a
  // first-touch parse of an on-disk cache — runs without holding mutex_,
  // so it never stalls workers publishing results or handles polling.
  if (!options_.force && !streaming) {
    if (std::optional<SimResult> cached = store_->get(state->key)) {
      state->status = JobStatus::Done;
      state->result = *std::move(cached);
      const std::lock_guard<std::mutex> lock(mutex_);
      ++store_hits_;
      return make_handle(std::move(state));
    }
  }

  const std::size_t shard =
      ordered_puts() ? shard_for_key(state->key, options_.shards) : 0;
  JobHandle handle;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Re-check: a duplicate may have been queued while we read the store.
    if (!streaming) {
      const auto in_flight = in_flight_.find(state->key);
      if (in_flight != in_flight_.end()) {
        ++coalesced_;
        return make_handle(in_flight->second);
      }
    }
    state->status = JobStatus::Queued;
    state->shard = shard;
    state->order = next_order_++;
    // Attach the handle before publishing the state to the queue: from
    // that point on, waiters is shared with coalescing submitters.
    handle = make_handle(state);
    shards_[shard]->queue.push_back(state);
    if (!streaming) in_flight_.emplace(state->key, state);
    ++total_accepted_;
    spawn_worker_locked(shard);
  }
  shards_[shard]->work_cv.notify_one();
  return handle;
}

/// Removes \p state from the coalescing index.  Guarded lookup: streaming
/// jobs never register, and a streaming + non-streaming pair can share a
/// key, so erase only the entry that maps to this exact state.
/// \pre mutex_ held.
void SimService::unindex_locked(const std::shared_ptr<JobState>& state) {
  const auto it = in_flight_.find(state->key);
  if (it != in_flight_.end() && it->second == state) in_flight_.erase(it);
}

void SimService::worker_loop(std::size_t shard) {
  if (options_.pin_workers) pin_current_thread(shard);
  Shard& home = *shards_[shard];
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    home.work_cv.wait(lock, [this, &home] {
      return stopping_ || (!paused_ && !home.queue.empty());
    });
    if (stopping_) return;
    std::shared_ptr<JobState> state = home.queue.front();
    home.queue.pop_front();
    if (state->status != JobStatus::Queued) continue;  // Cancelled in place.
    state->status = JobStatus::Running;
    ++running_;
    lock.unlock();

    SimResult result = run_sim_job(state->job, options_.checkpoint);
    // Streaming jobs skipped the store read, so an entry may already
    // exist; re-putting would append a duplicate line to persistent
    // backends on every repeated streaming run (first-write-wins makes
    // it dead weight, not a wrong answer — but unbounded growth).
    // Sharded mode defers this to the submission-ordered flush instead.
    if (!ordered_puts() &&
        (!state->job.streaming() || !store_->get(state->key))) {
      store_->put(state->key, result);
    }

    lock.lock();
    state->status = JobStatus::Done;
    state->result = std::move(result);
    // Ordered mode keeps the job in the coalescing index until its flush
    // lands: a duplicate submitted while the result is Done-but-unflushed
    // would otherwise miss both the index and the store and re-simulate,
    // appending a second line serial execution never writes.
    if (!ordered_puts()) unindex_locked(state);
    std::vector<std::function<void(const SimResult&)>> callbacks =
        std::move(state->callbacks);
    state->callbacks.clear();
    --running_;
    ++simulations_;
    if (options_.verbose) {
      std::fprintf(stderr, "[ringclu] %zu/%zu %s\n", simulations_,
                   total_accepted_, state->result.summary().c_str());
    }
    done_cv_.notify_all();
    if (ordered_puts()) {
      pending_flush_.emplace(state->order, state);
      flush_store(lock);
    }
    lock.unlock();

    // state->result is immutable from here on; callbacks run unlocked on
    // this worker thread, in registration order.
    for (const auto& callback : callbacks) callback(state->result);

    lock.lock();
  }
}

void SimService::flush_store(std::unique_lock<std::mutex>& lock) {
  if (flushing_) return;  // The active flusher will drain new deposits.
  flushing_ = true;
  for (;;) {
    const auto it = pending_flush_.find(next_flush_);
    if (it == pending_flush_.end()) break;
    const std::shared_ptr<JobState> state = it->second;
    pending_flush_.erase(it);
    ++next_flush_;
    if (state == nullptr) continue;  // Cancelled index: nothing to write.
    lock.unlock();
    // state->result is immutable once Done (observed under the mutex);
    // the store call runs unlocked so it never stalls other workers.
    if (!state->job.streaming() || !store_->get(state->key)) {
      store_->put(state->key, state->result);
    }
    lock.lock();
    // The entry is in the store now: duplicates can leave the coalescing
    // index and resolve as store hits.
    unindex_locked(state);
  }
  flushing_ = false;
  done_cv_.notify_all();  // wait_idle() also waits for the flush to drain.
}

JobStatus JobHandle::wait() const {
  RINGCLU_EXPECTS(valid());
  JobState& state = *core_->state;
  SimService& service = *state.service;
  std::unique_lock<std::mutex> lock(service.mutex_);
  service.done_cv_.wait(lock, [this, &state] {
    return core_->cancelled || job_status_terminal(state.status);
  });
  return core_->cancelled ? JobStatus::Cancelled : state.status;
}

bool JobHandle::cancel() {
  RINGCLU_EXPECTS(valid());
  JobState& state = *core_->state;
  SimService& service = *state.service;
  bool notify = false;
  {
    std::unique_lock<std::mutex> lock(service.mutex_);
    if (core_->cancelled) return false;
    if (state.status != JobStatus::Queued) return false;
    core_->cancelled = true;
    --state.waiters;
    if (state.waiters == 0) {
      // Last interested handle: drop the job before it is dispatched.
      state.status = JobStatus::Cancelled;
      service.unindex_locked(core_->state);
      auto& queue = service.shards_[state.shard]->queue;
      queue.erase(std::remove(queue.begin(), queue.end(), core_->state),
                  queue.end());
      --service.total_accepted_;
      if (service.ordered_puts()) {
        // Park a null entry at this submission index and flush: results
        // already parked behind it must not wait for a job that will
        // never run.
        service.pending_flush_.emplace(state.order, nullptr);
        service.flush_store(lock);
      }
    }
    notify = true;
  }
  service.done_cv_.notify_all();
  return notify;
}

void JobHandle::on_complete(std::function<void(const SimResult&)> callback) {
  RINGCLU_EXPECTS(valid());
  JobState& state = *core_->state;
  SimService& service = *state.service;
  {
    std::unique_lock<std::mutex> lock(service.mutex_);
    if (core_->cancelled || state.status == JobStatus::Cancelled ||
        state.status == JobStatus::Failed) {
      return;  // Never completes: callback is dropped.
    }
    if (state.status != JobStatus::Done) {
      state.callbacks.push_back(std::move(callback));
      return;
    }
  }
  // Already done: run inline, unlocked (result is immutable).
  callback(state.result);
}

void SimService::pause() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void SimService::resume() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->work_cv.notify_all();
  }
}

void SimService::wait_idle() const {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (!shard->queue.empty()) return false;
    }
    // In sharded mode "idle" includes the ordered flush: every completed
    // result has reached the store (pending empty, no put in flight).
    return running_ == 0 && pending_flush_.empty() && !flushing_;
  });
}

std::size_t SimService::simulations_run() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return simulations_;
}

std::size_t SimService::store_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_hits_;
}

std::size_t SimService::coalesced_submissions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return coalesced_;
}

std::size_t SimService::workers_started() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->workers.size();
  }
  return total;
}

SimServiceStats SimService::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SimServiceStats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    stats.queued += shard->queue.size();
    stats.workers += shard->workers.size();
  }
  stats.running = running_;
  stats.simulations = simulations_;
  stats.store_hits = store_hits_;
  stats.coalesced = coalesced_;
  return stats;
}

}  // namespace ringclu
