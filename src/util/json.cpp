#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/assert.h"
#include "util/format.h"

namespace ringclu {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += str_format("\\u%04x", static_cast<unsigned>(
                                           static_cast<unsigned char>(ch)));
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  // Integral doubles print as integers (the common case for counters).
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return str_format("%lld", static_cast<long long>(value));
  }
  return str_format("%.17g", value);
}

// ---- JsonWriter -------------------------------------------------------

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RINGCLU_EXPECTS(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RINGCLU_EXPECTS(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  // The key's value follows immediately; suppress its comma.
  needs_comma_.back() = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  comma();
  out_ += json_number(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += str_format("%llu", static_cast<unsigned long long>(number));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  out_ += str_format("%lld", static_cast<long long>(number));
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

// ---- JsonValue / parser -----------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text, const JsonParseLimits& limits)
      : text_(text), limits_(limits) {}

  std::optional<JsonValue> parse_document() {
    std::optional<JsonValue> value = parse_value(0);
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char ch) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool eat_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string_body() {
    // Opening quote already consumed.
    std::string out;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              return std::nullopt;
            }
          }
          // Only the escapes our writer emits (< 0x20) need to survive;
          // encode the code point as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_value(std::size_t depth) {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    JsonValue value;
    const char ch = text_[pos_];
    if (ch == '{') {
      // Depth gates recursion BEFORE the frame for the nested value is
      // created: a hostile "{"a":{"a":{... document fails cleanly at
      // max_depth instead of exhausting the stack.
      if (depth >= limits_.max_depth) return std::nullopt;
      ++pos_;
      value.kind = JsonValue::Kind::Object;
      skip_ws();
      if (eat('}')) return value;
      for (;;) {
        if (!eat('"')) return std::nullopt;
        std::optional<std::string> key = parse_string_body();
        if (!key) return std::nullopt;
        if (!eat(':')) return std::nullopt;
        std::optional<JsonValue> member = parse_value(depth + 1);
        if (!member) return std::nullopt;
        value.object.emplace(*std::move(key), *std::move(member));
        if (eat(',')) continue;
        if (eat('}')) return value;
        return std::nullopt;
      }
    }
    if (ch == '[') {
      if (depth >= limits_.max_depth) return std::nullopt;
      ++pos_;
      value.kind = JsonValue::Kind::Array;
      skip_ws();
      if (eat(']')) return value;
      for (;;) {
        std::optional<JsonValue> element = parse_value(depth + 1);
        if (!element) return std::nullopt;
        value.array.push_back(*std::move(element));
        if (eat(',')) continue;
        if (eat(']')) return value;
        return std::nullopt;
      }
    }
    if (ch == '"') {
      ++pos_;
      std::optional<std::string> text = parse_string_body();
      if (!text) return std::nullopt;
      value.kind = JsonValue::Kind::String;
      value.string = *std::move(text);
      return value;
    }
    if (eat_literal("true")) {
      value.kind = JsonValue::Kind::Bool;
      value.boolean = true;
      return value;
    }
    if (eat_literal("false")) {
      value.kind = JsonValue::Kind::Bool;
      value.boolean = false;
      return value;
    }
    if (eat_literal("null")) return value;  // Kind::Null

    // Number.
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    value.kind = JsonValue::Kind::Number;
    value.number = number;
    return value;
  }

  std::string_view text_;
  JsonParseLimits limits_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    const JsonParseLimits& limits) {
  if (text.size() > limits.max_bytes) return std::nullopt;
  return Parser(text, limits).parse_document();
}

namespace {

void pretty_append(const JsonValue& value, int indent, int depth,
                   std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  switch (value.kind) {
    case JsonValue::Kind::Null: out += "null"; return;
    case JsonValue::Kind::Bool: out += value.boolean ? "true" : "false"; return;
    case JsonValue::Kind::Number: out += json_number(value.number); return;
    case JsonValue::Kind::String:
      out += '"';
      out += json_escape(value.string);
      out += '"';
      return;
    case JsonValue::Kind::Array: {
      if (value.array.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        out += pad;
        pretty_append(value.array[i], indent, depth + 1, out);
        out += i + 1 < value.array.size() ? ",\n" : "\n";
      }
      out += close_pad;
      out += ']';
      return;
    }
    case JsonValue::Kind::Object: {
      if (value.object.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      std::size_t remaining = value.object.size();
      for (const auto& [key, member] : value.object) {
        out += pad;
        out += '"';
        out += json_escape(key);
        out += "\": ";
        pretty_append(member, indent, depth + 1, out);
        out += --remaining > 0 ? ",\n" : "\n";
      }
      out += close_pad;
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string json_pretty(const JsonValue& value, int indent) {
  std::string out;
  pretty_append(value, indent, 0, out);
  return out;
}

namespace {

void compact_append(const JsonValue& value, std::string& out) {
  switch (value.kind) {
    case JsonValue::Kind::Null: out += "null"; return;
    case JsonValue::Kind::Bool: out += value.boolean ? "true" : "false"; return;
    case JsonValue::Kind::Number: out += json_number(value.number); return;
    case JsonValue::Kind::String:
      out += '"';
      out += json_escape(value.string);
      out += '"';
      return;
    case JsonValue::Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) out += ',';
        compact_append(value.array[i], out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.object) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(key);
        out += "\":";
        compact_append(member, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string json_compact(const JsonValue& value) {
  std::string out;
  compact_append(value, out);
  return out;
}

}  // namespace ringclu
