#include "util/config.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/assert.h"

extern char** environ;

namespace ringclu {
namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  // strtoull silently skips leading whitespace and *negates* a '-' value
  // into the unsigned range; reject both up front, along with an explicit
  // '+', so exactly the canonical spellings parse.
  if (text.empty()) return std::nullopt;
  const unsigned char first = static_cast<unsigned char>(text.front());
  if (std::isspace(first) || text.front() == '-' || text.front() == '+') {
    return std::nullopt;
  }
  const std::string copy(text);  // strtoull needs NUL termination
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(copy.c_str(), &end, 0);
  if (errno == ERANGE) return std::nullopt;
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return static_cast<std::uint64_t>(parsed);
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const unsigned char first = static_cast<unsigned char>(text.front());
  if (std::isspace(first) || text.front() == '+') return std::nullopt;
  const std::string copy(text);
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(copy.c_str(), &end, 0);
  if (errno == ERANGE) return std::nullopt;
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return static_cast<std::int64_t>(parsed);
}

std::optional<bool> parse_bool(std::string_view text) {
  const std::string lowered = to_lower(text);
  if (lowered == "1" || lowered == "true" || lowered == "yes" ||
      lowered == "on") {
    return true;
  }
  if (lowered == "0" || lowered == "false" || lowered == "no" ||
      lowered == "off") {
    return false;
  }
  return std::nullopt;
}

bool Config::parse_tokens(const std::vector<std::string>& tokens) {
  for (const auto& token : tokens) {
    if (!parse_token(token)) return false;
  }
  return true;
}

bool Config::parse_token(std::string_view token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  set(std::string(token.substr(0, eq)), std::string(token.substr(eq + 1)));
  return true;
}

void Config::import_env(std::string_view prefix) {
  for (char** env = environ; environ != nullptr && *env != nullptr; ++env) {
    std::string_view entry(*env);
    if (entry.substr(0, prefix.size()) != prefix) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq <= prefix.size()) continue;
    set(to_lower(entry.substr(prefix.size(), eq - prefix.size())),
        std::string(entry.substr(eq + 1)));
  }
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::contains(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> Config::get(std::string_view key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(std::string_view key,
                               std::string_view fallback) const {
  auto value = get(key);
  return value ? *value : std::string(fallback);
}

std::int64_t Config::get_int(std::string_view key,
                             std::int64_t fallback) const {
  auto value = get(key);
  if (!value) return fallback;
  // parse_int instead of raw strtoll: overflow and trailing junk become a
  // contract failure here, never a silently wrapped value.
  const std::optional<std::int64_t> parsed = parse_int(*value);
  RINGCLU_EXPECTS(parsed.has_value() && "unparseable integer config value");
  return *parsed;
}

double Config::get_double(std::string_view key, double fallback) const {
  auto value = get(key);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  RINGCLU_EXPECTS(end != nullptr && *end == '\0' && !value->empty());
  return parsed;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  auto value = get(key);
  if (!value) return fallback;
  const std::optional<bool> parsed = parse_bool(*value);
  RINGCLU_EXPECTS(parsed.has_value() && "unparseable boolean config value");
  return *parsed;
}

std::vector<std::string> Config::entries() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key + "=" + value);
  return out;
}

}  // namespace ringclu
