#pragma once

/// \file rng.h
/// Deterministic pseudo-random number generation for workload synthesis.
///
/// The simulator must be bit-reproducible across runs and platforms, so we
/// carry our own xoshiro256** implementation instead of relying on
/// implementation-defined standard-library distributions.

#include <cstdint>
#include <span>

#include "util/assert.h"

namespace ringclu {

/// splitmix64 step; used to expand a single seed into a full xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator (Blackman & Vigna).  Small, fast, and with enough
/// state for the long instruction streams the trace generator produces.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent streams.
  explicit constexpr Rng(std::uint64_t seed = 0x2005'0419'0001ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Next raw 64-bit value.
  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  \pre bound > 0.
  constexpr std::uint64_t uniform(std::uint64_t bound) {
    RINGCLU_EXPECTS(bound > 0);
    // Lemire-style rejection-free mapping is fine here: bias is < 2^-32 for
    // the bounds the generator uses (all far below 2^32).
    const __uint128_t wide =
        static_cast<__uint128_t>(next_u64()) * static_cast<__uint128_t>(bound);
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.  \pre lo <= hi.
  constexpr std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    RINGCLU_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double real01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability \p p of returning true.
  constexpr bool bernoulli(double p) { return real01() < p; }

  /// Picks a uniformly random element of \p items.  \pre !items.empty().
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    RINGCLU_EXPECTS(!items.empty());
    return items[uniform(items.size())];
  }

  /// Samples an index according to non-negative weights.
  /// \pre at least one weight is positive.
  [[nodiscard]] std::size_t weighted_pick(std::span<const double> weights) {
    double total = 0;
    for (double w : weights) {
      RINGCLU_EXPECTS(w >= 0);
      total += w;
    }
    RINGCLU_EXPECTS(total > 0);
    double point = real01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      point -= weights[i];
      if (point < 0) return i;
    }
    return weights.size() - 1;  // numeric edge: fall back to last bucket
  }

  /// Geometric-ish small random walk distance: returns k >= 1 with
  /// P(k) proportional to ratio^k.  Used for dependence-distance sampling.
  constexpr int geometric(double ratio, int max_value) {
    RINGCLU_EXPECTS(ratio > 0 && ratio < 1);
    RINGCLU_EXPECTS(max_value >= 1);
    int k = 1;
    while (k < max_value && bernoulli(ratio)) ++k;
    return k;
  }

  /// Raw generator state, for checkpoint serialization only.
  [[nodiscard]] constexpr std::span<const std::uint64_t, 4> state() const {
    return std::span<const std::uint64_t, 4>(state_);
  }

  /// Restores state captured by state(); resumes the identical stream.
  constexpr void set_state(std::span<const std::uint64_t, 4> words) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = words[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Derives a child seed from a parent seed and a label hash; lets every
/// (program, run) pair own an independent stream.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t parent,
                                                  std::uint64_t label) {
  std::uint64_t s = parent ^ (0x9e3779b97f4a7c15ULL + (label << 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

/// FNV-1a hash of a string; used to hash program names into seed labels.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace ringclu
