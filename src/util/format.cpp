#include "util/format.h"

#include <cstdio>

namespace ringclu {

std::string str_vformat(const char* fmt, std::va_list args) {
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
  va_end(args_copy);
  if (needed <= 0) return {};
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

std::string str_format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::string out = str_vformat(fmt, args);
  va_end(args);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pct(double fraction, int decimals) {
  return str_format("%+.*f%%", decimals, fraction * 100.0);
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(text) + std::string(width - text.size(), ' ');
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(delim, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace ringclu
