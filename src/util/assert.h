#pragma once

/// \file assert.h
/// Always-on contract checks in the style of the C++ Core Guidelines
/// (I.6 Expects / I.8 Ensures).  Simulation correctness matters more than the
/// (small) cost of the checks, so they are enabled in every build type.

namespace ringclu {

/// Prints a diagnostic and aborts.  Used by the contract macros below.
[[noreturn]] void contract_failure(const char* kind, const char* condition,
                                   const char* file, int line);

}  // namespace ringclu

#ifdef RINGCLU_NO_CONTRACT_CHECKS

// Contract checking compiled out (cmake -DRINGCLU_CONTRACTS=OFF), for
// throughput-measurement builds.  Conditions become unevaluated operands:
// no code runs, but variables referenced only in checks stay "used".
#define RINGCLU_EXPECTS(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#define RINGCLU_ENSURES(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#define RINGCLU_ASSERT(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#define RINGCLU_UNREACHABLE(msg) __builtin_unreachable()

#else

/// Precondition check: argument/state expected by the callee.
#define RINGCLU_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                           \
          : ::ringclu::contract_failure("Precondition", #cond, __FILE__,   \
                                        __LINE__))

/// Postcondition check: guarantee established by the callee.
#define RINGCLU_ENSURES(cond)                                              \
  ((cond) ? static_cast<void>(0)                                           \
          : ::ringclu::contract_failure("Postcondition", #cond, __FILE__,  \
                                        __LINE__))

/// Internal invariant check.
#define RINGCLU_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                           \
          : ::ringclu::contract_failure("Invariant", #cond, __FILE__,      \
                                        __LINE__))

/// Marks unreachable control flow.
#define RINGCLU_UNREACHABLE(msg)                                           \
  ::ringclu::contract_failure("Unreachable", msg, __FILE__, __LINE__)

#endif  // RINGCLU_NO_CONTRACT_CHECKS
