#include "util/assert.h"

#include <cstdio>
#include <cstdlib>

namespace ringclu {

void contract_failure(const char* kind, const char* condition,
                      const char* file, int line) {
  std::fprintf(stderr, "ringclu: %s violated: %s (%s:%d)\n", kind, condition,
               file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ringclu
