#pragma once

/// \file json.h
/// Minimal JSON support: an escaping writer for the machine-readable
/// outputs (ringclu_sim --json, JSON Lines metric sinks) and a small
/// recursive-descent parser used to validate those outputs round-trip.
/// Deliberately tiny — objects, arrays, strings, doubles, bools, null —
/// no external dependency.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ringclu {

/// Escapes \p text for use inside a JSON string literal (quotes not
/// included): ", \, control characters.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Formats \p value the way JSON requires: no NaN/Inf (mapped to 0),
/// integral values without a trailing ".0" explosion, %.17g otherwise so
/// doubles round-trip exactly.
[[nodiscard]] std::string json_number(double value);

/// Streaming writer for one JSON document.  Keys/values are emitted in
/// call order; the writer inserts commas and quotes and escapes strings.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("gzip");
///   w.key("ipc").value(1.25);
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key (inside an object only).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The document so far.  \pre all containers closed for a full document.
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma();
  std::string out_;
  /// One entry per open container: true when a value has already been
  /// written at this level (so the next one needs a comma).
  std::vector<bool> needs_comma_;
};

/// Parsed JSON value (tree form).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Ordered (insertion order is not preserved; lookups by key).
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses one JSON document (object, array or scalar).  Returns nullopt on
/// any syntax error or trailing garbage.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text);

/// Serializes \p value back to JSON text, indented \p indent spaces per
/// level (human-facing outputs: --dump-config, expanded sweep artifacts).
/// Object keys emit in JsonValue's map order (sorted); numbers print via
/// json_number, so parse -> pretty -> parse round-trips.
[[nodiscard]] std::string json_pretty(const JsonValue& value, int indent = 2);

}  // namespace ringclu
