#pragma once

/// \file json.h
/// Minimal JSON support: an escaping writer for the machine-readable
/// outputs (ringclu_sim --json, JSON Lines metric sinks) and a small
/// recursive-descent parser used to validate those outputs round-trip.
/// Deliberately tiny — objects, arrays, strings, doubles, bools, null —
/// no external dependency.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ringclu {

/// Escapes \p text for use inside a JSON string literal (quotes not
/// included): ", \, control characters.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Formats \p value the way JSON requires: no NaN/Inf (mapped to 0),
/// integral values without a trailing ".0" explosion, %.17g otherwise so
/// doubles round-trip exactly.
[[nodiscard]] std::string json_number(double value);

/// Streaming writer for one JSON document.  Keys/values are emitted in
/// call order; the writer inserts commas and quotes and escapes strings.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("gzip");
///   w.key("ipc").value(1.25);
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key (inside an object only).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The document so far.  \pre all containers closed for a full document.
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma();
  std::string out_;
  /// One entry per open container: true when a value has already been
  /// written at this level (so the next one needs a comma).
  std::vector<bool> needs_comma_;
};

/// Parsed JSON value (tree form).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Ordered (insertion order is not preserved; lookups by key).
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Resource bounds for json_parse.  The defaults are what every trusted
/// caller (config files, golden round-trips) gets implicitly: documents of
/// any size, nesting capped well below stack exhaustion.  Parsers fed
/// untrusted network bytes (the ringclu_simd request path) pass explicit,
/// much tighter limits so adversarial input fails with a clean nullopt —
/// never a stack overflow or an unbounded allocation.
struct JsonParseLimits {
  /// Maximum container nesting depth (objects + arrays).  The parser is
  /// recursive-descent: each level costs one stack frame, so this bound is
  /// what stands between a hostile "[[[[..." document and stack overflow.
  std::size_t max_depth = 256;
  /// Maximum document size in bytes; larger inputs are rejected before a
  /// single byte is parsed (no proportional allocation for oversized
  /// input).
  std::size_t max_bytes = SIZE_MAX;
};

/// Parses one JSON document (object, array or scalar).  Returns nullopt on
/// any syntax error, trailing garbage, or a violated resource limit.
[[nodiscard]] std::optional<JsonValue> json_parse(
    std::string_view text, const JsonParseLimits& limits = {});

/// Serializes \p value back to JSON text, indented \p indent spaces per
/// level (human-facing outputs: --dump-config, expanded sweep artifacts).
/// Object keys emit in JsonValue's map order (sorted); numbers print via
/// json_number, so parse -> pretty -> parse round-trips.
[[nodiscard]] std::string json_pretty(const JsonValue& value, int indent = 2);

/// Serializes \p value as one compact line (no whitespace) — the JSON
/// Lines form.  Same key order and number formatting as json_pretty, so
/// compact and pretty renderings of one value parse back equal.
[[nodiscard]] std::string json_compact(const JsonValue& value);

}  // namespace ringclu
