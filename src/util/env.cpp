#include "util/env.h"

#include <cstdio>
#include <cstdlib>

#include "util/config.h"

namespace ringclu {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

void env_value_error(const char* name, std::string_view value,
                     std::string_view expected) {
  std::fprintf(stderr, "ringclu: %s: expected %.*s, got '%.*s'\n", name,
               static_cast<int>(expected.size()), expected.data(),
               static_cast<int>(value.size()), value.data());
  std::exit(2);
}

std::uint64_t env_uint_or(const char* name, std::uint64_t fallback) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) return fallback;
  const std::optional<std::uint64_t> parsed = parse_uint(*raw);
  if (!parsed) env_value_error(name, *raw, "an unsigned integer");
  return *parsed;
}

std::int64_t env_int_or(const char* name, std::int64_t fallback) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) return fallback;
  const std::optional<std::int64_t> parsed = parse_int(*raw);
  if (!parsed) env_value_error(name, *raw, "an integer");
  return *parsed;
}

bool env_bool_or(const char* name, bool fallback) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) return fallback;
  const std::optional<bool> parsed = parse_bool(*raw);
  if (!parsed) env_value_error(name, *raw, "a boolean (1/0/true/false)");
  return *parsed;
}

}  // namespace ringclu
