#pragma once

/// \file static_vector.h
/// Fixed-capacity inline vector.  The simulator uses it for tiny hot
/// collections (operand lists, steering candidate sets) where heap churn
/// would dominate; capacity overflow is a contract violation.

#include <array>
#include <cstddef>

#include "util/assert.h"

namespace ringclu {

/// Vector with inline storage for up to N trivially-destructible elements.
template <typename T, std::size_t N>
class StaticVector {
 public:
  using value_type = T;

  constexpr StaticVector() = default;

  constexpr StaticVector(std::initializer_list<T> init) {
    RINGCLU_EXPECTS(init.size() <= N);
    for (const T& item : init) push_back(item);
  }

  constexpr void push_back(const T& value) {
    RINGCLU_EXPECTS(size_ < N);
    items_[size_++] = value;
  }

  constexpr void clear() { size_ = 0; }

  constexpr void pop_back() {
    RINGCLU_EXPECTS(size_ > 0);
    --size_;
  }

  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] static constexpr std::size_t capacity() { return N; }

  [[nodiscard]] constexpr T& operator[](std::size_t index) {
    RINGCLU_EXPECTS(index < size_);
    return items_[index];
  }
  [[nodiscard]] constexpr const T& operator[](std::size_t index) const {
    RINGCLU_EXPECTS(index < size_);
    return items_[index];
  }

  [[nodiscard]] constexpr T& back() {
    RINGCLU_EXPECTS(size_ > 0);
    return items_[size_ - 1];
  }

  [[nodiscard]] constexpr T* begin() { return items_.data(); }
  [[nodiscard]] constexpr T* end() { return items_.data() + size_; }
  [[nodiscard]] constexpr const T* begin() const { return items_.data(); }
  [[nodiscard]] constexpr const T* end() const { return items_.data() + size_; }

  [[nodiscard]] constexpr bool contains(const T& value) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (items_[i] == value) return true;
    }
    return false;
  }

 private:
  std::array<T, N> items_{};
  std::size_t size_ = 0;
};

}  // namespace ringclu
