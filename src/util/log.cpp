#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ringclu {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("RINGCLU_LOG");
  return env != nullptr ? parse_log_level(env) : LogLevel::Warn;
}

std::atomic<LogLevel> g_level{initial_level()};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  std::va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "[ringclu %s] ", level_tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace ringclu
