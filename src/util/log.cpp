#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>

#include "util/env.h"

namespace ringclu {
namespace {

std::atomic<LogLevel> g_level{log_level_from_env()};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(std::string_view name) {
  return try_parse_log_level(name).value_or(LogLevel::Warn);
}

std::optional<LogLevel> try_parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return std::nullopt;
}

LogLevel log_level_from_env() {
  const std::optional<std::string> raw = env_string("RINGCLU_LOG");
  if (!raw) return LogLevel::Warn;
  const std::optional<LogLevel> parsed = try_parse_log_level(*raw);
  if (!parsed) {
    env_value_error("RINGCLU_LOG", *raw, "debug|info|warn|error|off");
  }
  return *parsed;
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  std::va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "[ringclu %s] ", level_tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace ringclu
