#pragma once

/// \file format.h
/// printf-style string formatting plus small text helpers used by the
/// statistics tables and reports.

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace ringclu {

/// printf-style formatting into a std::string.
[[nodiscard]] std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list variant of str_format.
[[nodiscard]] std::string str_vformat(const char* fmt, std::va_list args);

/// Joins \p parts with \p sep.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Formats a ratio as a signed percentage, e.g. 0.153 -> "+15.3%".
[[nodiscard]] std::string pct(double fraction, int decimals = 1);

/// Formats a count with thousands separators, e.g. 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(long long value);

/// Left/right pads \p text with spaces to \p width (no trimming).
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);

/// True if \p text starts with \p prefix (C++20 shim kept for readability).
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Splits on a delimiter, skipping empty tokens.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

}  // namespace ringclu
