#pragma once

/// \file log.h
/// Minimal leveled logging to stderr.  Default level is Warn so simulations
/// stay quiet; tools raise it via set_log_level or RINGCLU_LOG=debug.

#include <optional>
#include <string_view>

namespace ringclu {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off"; unknown strings keep Warn.
[[nodiscard]] LogLevel parse_log_level(std::string_view name);

/// Strict companion of parse_log_level: nullopt on unknown level names.
[[nodiscard]] std::optional<LogLevel> try_parse_log_level(
    std::string_view name);

/// Initial level from RINGCLU_LOG via the strict util/env.h helpers:
/// unset keeps Warn; a malformed value names the variable and exits 2.
[[nodiscard]] LogLevel log_level_from_env();

/// printf-style logging; evaluated only when \p level >= current level.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace ringclu

#define RINGCLU_LOG_DEBUG(...) \
  ::ringclu::log_message(::ringclu::LogLevel::Debug, __VA_ARGS__)
#define RINGCLU_LOG_INFO(...) \
  ::ringclu::log_message(::ringclu::LogLevel::Info, __VA_ARGS__)
#define RINGCLU_LOG_WARN(...) \
  ::ringclu::log_message(::ringclu::LogLevel::Warn, __VA_ARGS__)
#define RINGCLU_LOG_ERROR(...) \
  ::ringclu::log_message(::ringclu::LogLevel::Error, __VA_ARGS__)
