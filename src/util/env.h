#pragma once

/// \file env.h
/// Strict RINGCLU_* environment-variable access.  Every knob read outside
/// Config::import_env must flow through these helpers (enforced by the
/// env-getenv rule in tools/lint/ringclu_lint.py): an unset variable falls
/// back silently, but a set-and-malformed value is a hard configuration
/// error — the helper names the variable on stderr and exits with status
/// 2, the CLI's config-error convention — so a typo can never be silently
/// reinterpreted as a default.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ringclu {

/// Raw environment lookup; nullopt when unset.  The sanctioned getenv()
/// wrapper for RINGCLU_* knobs with non-numeric value grammars.
[[nodiscard]] std::optional<std::string> env_string(const char* name);

/// Unsigned knob via strict parse_uint; diagnoses + exits 2 on bad values.
[[nodiscard]] std::uint64_t env_uint_or(const char* name,
                                        std::uint64_t fallback);

/// Signed knob via strict parse_int; diagnoses + exits 2 on bad values.
[[nodiscard]] std::int64_t env_int_or(const char* name,
                                      std::int64_t fallback);

/// Boolean knob via strict parse_bool; diagnoses + exits 2 on bad values.
[[nodiscard]] bool env_bool_or(const char* name, bool fallback);

/// Reports a malformed environment value ("NAME: expected ..., got ...")
/// to stderr and exits with status 2.  Exposed so strict readers with
/// bespoke grammars (e.g. RINGCLU_LOG's level names) share one
/// diagnostic shape.
[[noreturn]] void env_value_error(const char* name, std::string_view value,
                                  std::string_view expected);

}  // namespace ringclu
