#pragma once

/// \file config.h
/// Flat string key/value configuration store with typed accessors.
/// Used for simulator parameter overrides ("key=value" tokens on the command
/// line or from RINGCLU_* environment variables).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ringclu {

/// Strictly parses \p text as an unsigned 64-bit integer (base 10, or
/// 0x-/0-prefixed via base 0).  Returns nullopt — never aborts, wraps or
/// accepts partially — for empty input, any sign or leading whitespace,
/// trailing characters, or out-of-range values.  This is the parser for
/// every externally supplied count (RINGCLU_* knobs, CLI values).
[[nodiscard]] std::optional<std::uint64_t> parse_uint(std::string_view text);

/// Strict signed companion of parse_uint (same rejection rules; a single
/// leading '-' is allowed).
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view text);

/// Parses a boolean token: 1/true/yes/on, 0/false/no/off (case-folded).
[[nodiscard]] std::optional<bool> parse_bool(std::string_view text);

/// A flat, ordered key/value configuration.
class Config {
 public:
  Config() = default;

  /// Parses a list of "key=value" tokens.  Tokens without '=' are rejected.
  /// Returns false (and stops) on the first malformed token.
  bool parse_tokens(const std::vector<std::string>& tokens);

  /// Parses a single "key=value" token.
  bool parse_token(std::string_view token);

  /// Imports every environment variable starting with \p prefix, mapping
  /// e.g. RINGCLU_INSTRS=5 to key "instrs" (prefix stripped, lower-cased).
  void import_env(std::string_view prefix);

  void set(std::string key, std::string value);

  [[nodiscard]] bool contains(std::string_view key) const;

  /// Raw lookup.
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Typed lookups; return \p fallback when the key is missing.
  /// \pre if present, the value must parse as the requested type.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// All entries in key order, as "key=value" strings.
  [[nodiscard]] std::vector<std::string> entries() const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace ringclu
