#pragma once

/// \file trace_source.h
/// Abstract supplier of dynamic micro-op streams.  Implementations:
/// SyntheticProgram (the SPEC2000-like generator) and TraceFileReader.

#include <string_view>

#include "isa/micro_op.h"

namespace ringclu {

/// A (possibly infinite) correct-path dynamic instruction stream.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produces the next micro-op.  Returns false at end of stream
  /// (synthetic programs never end; the simulator stops at its budget).
  virtual bool next(MicroOp& out) = 0;

  /// Rewinds to the beginning of the stream (deterministic replay).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace ringclu
