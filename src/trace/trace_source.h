#pragma once

/// \file trace_source.h
/// Abstract supplier of dynamic micro-op streams.  Implementations:
/// SyntheticProgram (the SPEC2000-like generator), TraceFileReader and
/// VectorTraceSource.
///
/// The base class owns a stream-position counter (ops handed out since the
/// last reset) via the non-virtual next()/reset() wrappers; subclasses
/// implement produce()/do_reset().  The counter is what makes the
/// checkpoint position contract (save_pos/restore_pos) work for every
/// source without each one tracking position itself.

#include <cstdint>
#include <string_view>

#include "isa/micro_op.h"

namespace ringclu {

class CheckpointReader;
class CheckpointWriter;

/// A (possibly infinite) correct-path dynamic instruction stream.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produces the next micro-op.  Returns false at end of stream
  /// (synthetic programs never end; the simulator stops at its budget).
  bool next(MicroOp& out) {
    if (!produce(out)) return false;
    ++position_;
    return true;
  }

  /// Rewinds to the beginning of the stream (deterministic replay).
  void reset() {
    do_reset();
    position_ = 0;
  }

  /// Ops handed out since construction or the last reset().
  [[nodiscard]] std::uint64_t position() const { return position_; }

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Checkpoint position contract: after restore_pos the source yields
  /// exactly the ops a fresh source would yield after position() calls to
  /// next().  The default implementation stores the position counter and
  /// restores by reset() + skipping — correct for every deterministic
  /// source, and cheap because trace generation is a tiny fraction of
  /// simulation cost.  Sources with seekable backing may override.
  virtual void save_pos(CheckpointWriter& out) const;
  virtual void restore_pos(CheckpointReader& in);

 protected:
  /// Subclass stream implementation (wrapped by next()).
  virtual bool produce(MicroOp& out) = 0;

  /// Subclass rewind implementation (wrapped by reset()).
  virtual void do_reset() = 0;

  /// For seek-based restore_pos overrides: after seeking the backing store
  /// the override must resynchronize the hand-out counter so the contract
  /// ("yields exactly what a fresh source yields after position() nexts")
  /// still holds.
  void set_position(std::uint64_t position) { position_ = position; }

 private:
  std::uint64_t position_ = 0;
};

}  // namespace ringclu
