#pragma once

/// \file trace_file.h
/// Compact binary trace format so generated workloads can be captured once
/// and replayed (or inspected) later.  Layout: 16-byte header (magic,
/// version, op count) followed by one variable-length record per micro-op
/// (flags byte, op class, registers, then only the fields the op uses,
/// varint-encoded deltas for PCs and addresses).
///
/// For block-compressed, seekable, digest-carrying traces see the RCLP
/// pack format (trace/pack/); `ringclu_trace convert` translates between
/// the two losslessly.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "trace/trace_source.h"

namespace ringclu {

class CheckpointReader;
class CheckpointWriter;

inline constexpr std::uint32_t kTraceMagic = 0x52434C54;  // "RCLT"
inline constexpr std::uint16_t kTraceVersion = 1;

/// Streams micro-ops to a file.
class TraceFileWriter {
 public:
  explicit TraceFileWriter(const std::string& path);
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void append(const MicroOp& op);

  /// Finalizes the header (op count) and closes the file.  Called by the
  /// destructor if not called explicitly.
  void close();

  [[nodiscard]] std::uint64_t ops_written() const { return count_; }

 private:
  void put_varint(std::uint64_t value);

  std::FILE* file_ = nullptr;
  std::uint64_t count_ = 0;
  std::uint64_t last_pc_ = 0;
  std::uint64_t last_addr_ = 0;
};

/// Replays a trace file as a TraceSource.  Malformed or truncated input
/// never aborts: the reader goes into a sticky error state (ok() false,
/// error() explains, produce() returns false) so CLIs and the registry
/// can diagnose adversarial bytes cleanly — the same contract as
/// TracePackReader and CheckpointReader.
class TraceFileReader final : public TraceSource {
 public:
  explicit TraceFileReader(const std::string& path);
  ~TraceFileReader() override;

  TraceFileReader(const TraceFileReader&) = delete;
  TraceFileReader& operator=(const TraceFileReader&) = delete;

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::uint64_t total_ops() const { return total_; }

  /// False once the header or any record failed to parse; sticky.
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Seekable position contract: save_pos records the byte offset and
  /// delta-decoder state alongside the op position, and restore_pos
  /// fseeks there directly instead of the default O(n) reset-and-skip —
  /// pinned bit-identical to the skip path in trace_conformance_test.
  /// Checkpoints written by the old position-only layout fail section
  /// validation and fall back to a cold run (never misread).
  void save_pos(CheckpointWriter& out) const override;
  void restore_pos(CheckpointReader& in) override;

 protected:
  bool produce(MicroOp& out) override;
  void do_reset() override;

 private:
  [[nodiscard]] bool get_varint(std::uint64_t& value);
  [[nodiscard]] bool get_byte(std::uint8_t& value);
  void fail(const std::string& message);

  std::string path_;
  std::string name_;
  std::FILE* file_ = nullptr;
  bool ok_ = true;
  std::string error_;
  std::uint64_t total_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t last_pc_ = 0;
  std::uint64_t last_addr_ = 0;
};

}  // namespace ringclu
