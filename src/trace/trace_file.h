#pragma once

/// \file trace_file.h
/// Compact binary trace format so generated workloads can be captured once
/// and replayed (or inspected) later.  Layout: 16-byte header (magic,
/// version, op count) followed by one variable-length record per micro-op
/// (flags byte, op class, registers, then only the fields the op uses,
/// varint-encoded deltas for PCs and addresses).

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "trace/trace_source.h"

namespace ringclu {

inline constexpr std::uint32_t kTraceMagic = 0x52434C54;  // "RCLT"
inline constexpr std::uint16_t kTraceVersion = 1;

/// Streams micro-ops to a file.
class TraceFileWriter {
 public:
  explicit TraceFileWriter(const std::string& path);
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void append(const MicroOp& op);

  /// Finalizes the header (op count) and closes the file.  Called by the
  /// destructor if not called explicitly.
  void close();

  [[nodiscard]] std::uint64_t ops_written() const { return count_; }

 private:
  void put_varint(std::uint64_t value);

  std::FILE* file_ = nullptr;
  std::uint64_t count_ = 0;
  std::uint64_t last_pc_ = 0;
  std::uint64_t last_addr_ = 0;
};

/// Replays a trace file as a TraceSource.
class TraceFileReader final : public TraceSource {
 public:
  explicit TraceFileReader(const std::string& path);
  ~TraceFileReader() override;

  TraceFileReader(const TraceFileReader&) = delete;
  TraceFileReader& operator=(const TraceFileReader&) = delete;

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::uint64_t total_ops() const { return total_; }

 protected:
  bool produce(MicroOp& out) override;
  void do_reset() override;

 private:
  [[nodiscard]] std::uint64_t get_varint();

  std::string path_;
  std::string name_;
  std::FILE* file_ = nullptr;
  std::uint64_t total_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t last_pc_ = 0;
  std::uint64_t last_addr_ = 0;
};

}  // namespace ringclu
