#include "trace/trace_source.h"

#include "core/checkpoint.h"

namespace ringclu {

void TraceSource::save_pos(CheckpointWriter& out) const {
  out.u64(position_);
}

void TraceSource::restore_pos(CheckpointReader& in) {
  const std::uint64_t target = in.u64();
  if (!in.ok()) return;
  reset();
  MicroOp scratch;
  for (std::uint64_t i = 0; i < target; ++i) {
    if (!next(scratch)) {
      in.fail("trace ended before checkpointed position");
      return;
    }
  }
}

}  // namespace ringclu
