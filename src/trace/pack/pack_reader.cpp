#include "trace/pack/pack_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/checkpoint.h"
#include "trace/pack/block_codec.h"
#include "util/format.h"

namespace ringclu {
namespace {

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

bool open_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Basename without the ".rclp" extension.
std::string pack_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string stem =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (stem.size() > kPackExtension.size() &&
      stem.compare(stem.size() - kPackExtension.size(),
                   kPackExtension.size(), kPackExtension) == 0) {
    stem.resize(stem.size() - kPackExtension.size());
  }
  return stem;
}

}  // namespace

std::unique_ptr<TracePackReader> TracePackReader::open(const std::string& path,
                                                       std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    open_error(error, str_format("cannot open '%s': %s", path.c_str(),
                                 std::strerror(errno)));
    return nullptr;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    open_error(error, str_format("cannot stat '%s'", path.c_str()));
    return nullptr;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < kPackHeaderSize) {
    ::close(fd);
    open_error(error,
               str_format("'%s': truncated header", path.c_str()));
    return nullptr;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    open_error(error, str_format("cannot mmap '%s': %s", path.c_str(),
                                 std::strerror(errno)));
    return nullptr;
  }

  std::unique_ptr<TracePackReader> reader(new TracePackReader());
  reader->path_ = path;
  reader->data_ = static_cast<const std::uint8_t*>(map);
  reader->size_ = size;

  std::string message;
  if (!PackHeader::decode(reader->data_, size, reader->header_, &message)) {
    open_error(error, str_format("'%s': %s", path.c_str(), message.c_str()));
    return nullptr;  // destructor unmaps
  }
  const PackHeader& header = reader->header_;

  // Index footer bounds: entries + trailing checksum must sit inside the
  // file, after the header.  All arithmetic guards against overflow by
  // dividing instead of multiplying.
  if (header.index_offset < kPackHeaderSize || header.index_offset > size ||
      (size - header.index_offset) < 8 ||
      header.block_count >
          (size - header.index_offset - 8) / kPackIndexEntrySize) {
    open_error(error, str_format("'%s': index out of bounds", path.c_str()));
    return nullptr;
  }
  const std::uint8_t* footer = reader->data_ + header.index_offset;
  const std::size_t footer_bytes = header.block_count * kPackIndexEntrySize;
  if (get_u64(footer + footer_bytes) != fnv1a64(footer, footer_bytes)) {
    open_error(error,
               str_format("'%s': index checksum mismatch", path.c_str()));
    return nullptr;
  }

  reader->index_.reserve(header.block_count);
  std::uint64_t expected_first = 0;
  for (std::uint32_t i = 0; i < header.block_count; ++i) {
    const std::uint8_t* entry = footer + i * kPackIndexEntrySize;
    PackBlockInfo info;
    info.offset = get_u64(entry + 0);
    info.first_op = get_u64(entry + 8);
    info.comp_size = get_u32(entry + 16);
    info.raw_size = get_u32(entry + 20);
    info.op_count = get_u32(entry + 24);
    info.checksum = get_u64(entry + 32);
    const bool in_file = info.offset >= kPackHeaderSize &&
                         info.offset <= header.index_offset &&
                         info.comp_size <= header.index_offset - info.offset;
    const bool shape_ok =
        info.op_count > 0 && info.op_count <= header.block_ops &&
        (i + 1 == header.block_count || info.op_count == header.block_ops) &&
        info.first_op == expected_first;
    if (!in_file || !shape_ok) {
      open_error(error,
                 str_format("'%s': malformed index entry %u", path.c_str(),
                            static_cast<unsigned>(i)));
      return nullptr;
    }
    expected_first += info.op_count;
    reader->index_.push_back(info);
  }
  if (expected_first != header.total_ops) {
    open_error(error, str_format("'%s': index op count disagrees with header",
                                 path.c_str()));
    return nullptr;
  }

  reader->name_ = "trace:" + pack_stem(path) + "@" +
                  format_digest(header.content_digest);
  return reader;
}

TracePackReader::~TracePackReader() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

std::uint64_t TracePackReader::compressed_bytes() const {
  std::uint64_t total = 0;
  for (const PackBlockInfo& info : index_) total += info.comp_size;
  return total;
}

std::uint64_t TracePackReader::raw_bytes() const {
  std::uint64_t total = 0;
  for (const PackBlockInfo& info : index_) total += info.raw_size;
  return total;
}

void TracePackReader::fail(const std::string& message) {
  if (ok_) {
    ok_ = false;
    error_ = message;
  }
}

bool TracePackReader::load_block(std::size_t index) {
  if (index >= index_.size()) {
    fail(str_format("'%s': block index out of range", path_.c_str()));
    return false;
  }
  const PackBlockInfo& info = index_[index];
  const std::uint8_t* comp = data_ + info.offset;
  if (fnv1a64(comp, info.comp_size) != info.checksum) {
    fail(str_format("'%s': block %zu checksum mismatch", path_.c_str(),
                    index));
    return false;
  }
  std::vector<std::uint8_t> raw;
  raw.reserve(info.raw_size);
  std::string message;
  if (!pack_decompress({comp, info.comp_size}, info.raw_size, raw,
                       &message)) {
    fail(str_format("'%s': block %zu: %s", path_.c_str(), index,
                    message.c_str()));
    return false;
  }
  ops_buf_.clear();
  ops_buf_.reserve(info.op_count);
  if (!decode_ops_block(raw, info.op_count, ops_buf_, &message)) {
    ops_buf_.clear();
    fail(str_format("'%s': block %zu: %s", path_.c_str(), index,
                    message.c_str()));
    return false;
  }
  cur_block_ = index;
  buf_pos_ = 0;
  return true;
}

bool TracePackReader::produce(MicroOp& out) {
  if (!ok_) return false;
  if (consumed_ >= header_.total_ops) return false;
  if (cur_block_ == kNoBlock || buf_pos_ >= ops_buf_.size()) {
    const std::size_t next = cur_block_ == kNoBlock ? 0 : cur_block_ + 1;
    if (!load_block(next)) return false;
  }
  out = ops_buf_[buf_pos_++];
  ++consumed_;
  return true;
}

void TracePackReader::do_reset() {
  cur_block_ = kNoBlock;
  ops_buf_.clear();
  buf_pos_ = 0;
  consumed_ = 0;
}

void TracePackReader::save_pos(CheckpointWriter& out) const {
  out.u64(position());
}

void TracePackReader::restore_pos(CheckpointReader& in) {
  const std::uint64_t target = in.u64();
  if (!in.ok()) return;
  if (!ok_) {
    in.fail("trace pack is in an error state");
    return;
  }
  if (target > header_.total_ops) {
    in.fail("checkpointed position beyond trace pack");
    return;
  }
  reset();
  if (target == header_.total_ops) {
    // Positioned exactly at end of stream: nothing to decode.
    consumed_ = target;
    set_position(target);
    return;
  }
  // The containing block via the index: the last entry whose first_op is
  // <= target.  Only that one block is decoded — the O(1)-in-stream-length
  // resume this override exists for.
  const auto it = std::upper_bound(
      index_.begin(), index_.end(), target,
      [](std::uint64_t value, const PackBlockInfo& info) {
        return value < info.first_op;
      });
  const std::size_t block = static_cast<std::size_t>(it - index_.begin()) - 1;
  if (!load_block(block)) {
    in.fail(error_);
    return;
  }
  buf_pos_ = static_cast<std::size_t>(target - index_[block].first_op);
  consumed_ = target;
  set_position(target);
}

}  // namespace ringclu
