#pragma once

/// \file pack_writer.h
/// Streams micro-ops into an RCLP trace pack (pack_format.h).  Ops are
/// buffered per block, encoded + compressed when the block fills, and
/// written to a unique temp file that close() finalizes (index footer,
/// header patch) and atomically renames into place — a crashed or failed
/// write never leaves a partial pack at the destination (PR 6 checkpoint
/// style).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "isa/micro_op.h"
#include "trace/pack/pack_format.h"

namespace ringclu {

class TracePackWriter {
 public:
  explicit TracePackWriter(std::string path,
                           std::uint32_t block_ops = kPackDefaultBlockOps);
  ~TracePackWriter();

  TracePackWriter(const TracePackWriter&) = delete;
  TracePackWriter& operator=(const TracePackWriter&) = delete;

  void append(const MicroOp& op);

  /// Flushes the last block, writes the index footer, patches the header
  /// and renames the temp file into place.  False with \p error set on
  /// any I/O failure (the temp file is then removed).  The destructor
  /// calls close(nullptr) if it was never called — but callers that care
  /// about durability must call it and check.
  [[nodiscard]] bool close(std::string* error);

  [[nodiscard]] std::uint64_t ops_written() const { return digest_.ops(); }

  /// Content digest of everything appended so far (final after close()).
  [[nodiscard]] std::uint64_t content_digest() const {
    return digest_.value();
  }

 private:
  void flush_block();
  void io_fail(const std::string& message);

  std::string path_;
  std::string tmp_path_;
  std::uint32_t block_ops_;
  std::FILE* file_ = nullptr;
  bool closed_ = false;
  bool failed_ = false;
  std::string error_;
  TraceDigest digest_;
  std::vector<MicroOp> pending_;
  std::vector<PackBlockInfo> index_;
  std::uint64_t offset_ = kPackHeaderSize;
};

}  // namespace ringclu
