#pragma once

/// \file pack_reader.h
/// Replays an RCLP trace pack as a TraceSource.  The file is mmap-backed
/// (read-only, shared) and decoded one block at a time: open() validates
/// header + index footer up front; each block's checksum is verified
/// before decompression and every decode step is bounds-checked, so
/// adversarial bytes produce a sticky diagnostic instead of UB.  A
/// corrupt block mid-stream ends the stream (produce() returns false)
/// with ok() false and error() naming the block.
///
/// The reader overrides save_pos/restore_pos to seek through the block
/// index — O(one block decode) resume instead of the default
/// reset-and-skip replay — pinned bit-identical to the skip path by
/// trace_conformance_test.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/pack/pack_format.h"
#include "trace/trace_source.h"

namespace ringclu {

class TracePackReader final : public TraceSource {
 public:
  /// Maps and validates \p path.  nullptr with \p error set on I/O
  /// failure, bad magic/version/flags, or a malformed index (never
  /// aborts).  Block payloads are validated lazily as they stream.
  [[nodiscard]] static std::unique_ptr<TracePackReader> open(
      const std::string& path, std::string* error);

  ~TracePackReader() override;

  TracePackReader(const TracePackReader&) = delete;
  TracePackReader& operator=(const TracePackReader&) = delete;

  /// "trace:<stem>@<16-hex content digest>" — self-describing, so the
  /// checkpoint workload identity and cache keys cover the trace content,
  /// not just its filename.
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t total_ops() const { return header_.total_ops; }
  [[nodiscard]] std::uint64_t content_digest() const {
    return header_.content_digest;
  }
  [[nodiscard]] std::uint32_t block_count() const {
    return header_.block_count;
  }
  [[nodiscard]] std::uint32_t block_ops() const { return header_.block_ops; }
  /// Sum of compressed block sizes (stats/tooling).
  [[nodiscard]] std::uint64_t compressed_bytes() const;
  /// Sum of raw (encoded, uncompressed) block sizes.
  [[nodiscard]] std::uint64_t raw_bytes() const;

  /// False after the first corrupt block / malformed record; sticky.
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Seek-based position contract: restore jumps to the containing block
  /// via the index and decodes only that block.
  void save_pos(CheckpointWriter& out) const override;
  void restore_pos(CheckpointReader& in) override;

 protected:
  bool produce(MicroOp& out) override;
  void do_reset() override;

 private:
  TracePackReader() = default;

  /// Decodes block \p index into ops_buf_.  False (sticky fail) on a
  /// checksum/decode failure.
  bool load_block(std::size_t index);
  void fail(const std::string& message);

  std::string path_;
  std::string name_;
  bool ok_ = true;
  std::string error_;

  const std::uint8_t* data_ = nullptr;  ///< mmap base (whole file)
  std::size_t size_ = 0;

  PackHeader header_;
  std::vector<PackBlockInfo> index_;

  static constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);
  std::size_t cur_block_ = kNoBlock;  ///< block decoded into ops_buf_
  std::vector<MicroOp> ops_buf_;
  std::size_t buf_pos_ = 0;      ///< next op within ops_buf_
  std::uint64_t consumed_ = 0;   ///< stream index of the next op
};

}  // namespace ringclu
