#include "trace/pack/pack_writer.h"

#include <cerrno>
#include <cstring>

#include "trace/pack/block_codec.h"
#include "util/format.h"

namespace ringclu {

TracePackWriter::TracePackWriter(std::string path, std::uint32_t block_ops)
    : path_(std::move(path)), block_ops_(block_ops == 0 ? 1 : block_ops) {
  // Unique temp name per writer instance so concurrent recorders in the
  // same directory never clobber each other's partial file (same idiom as
  // CheckpointWriter::write_file).
  const std::uintptr_t self = reinterpret_cast<std::uintptr_t>(this);
  tmp_path_ = str_format(
      "%s.tmp.%llx", path_.c_str(),
      static_cast<unsigned long long>(
          fnv1a64(reinterpret_cast<const std::uint8_t*>(path_.data()),
                  path_.size()) ^
          self));
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    io_fail(str_format("cannot open '%s': %s", tmp_path_.c_str(),
                       std::strerror(errno)));
    return;
  }
  // Header placeholder; patched with real counts/offsets in close().
  const std::uint8_t zeros[kPackHeaderSize] = {};
  if (std::fwrite(zeros, 1, kPackHeaderSize, file_) != kPackHeaderSize) {
    io_fail(str_format("short write to '%s'", tmp_path_.c_str()));
  }
}

TracePackWriter::~TracePackWriter() {
  if (!closed_) (void)close(nullptr);
}

void TracePackWriter::io_fail(const std::string& message) {
  if (!failed_) {
    failed_ = true;
    error_ = message;
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_path_.c_str());
  }
}

void TracePackWriter::append(const MicroOp& op) {
  digest_.add(op);
  if (failed_) return;
  pending_.push_back(op);
  if (pending_.size() >= block_ops_) flush_block();
}

void TracePackWriter::flush_block() {
  if (failed_ || pending_.empty()) return;
  std::vector<std::uint8_t> raw;
  encode_ops_block(pending_, raw);
  std::vector<std::uint8_t> comp;
  pack_compress(raw, comp);

  PackBlockInfo info;
  info.offset = offset_;
  info.first_op = digest_.ops() - pending_.size();
  info.comp_size = static_cast<std::uint32_t>(comp.size());
  info.raw_size = static_cast<std::uint32_t>(raw.size());
  info.op_count = static_cast<std::uint32_t>(pending_.size());
  info.checksum = fnv1a64(comp.data(), comp.size());

  if (std::fwrite(comp.data(), 1, comp.size(), file_) != comp.size()) {
    io_fail(str_format("short write to '%s'", tmp_path_.c_str()));
    return;
  }
  offset_ += comp.size();
  index_.push_back(info);
  pending_.clear();
}

bool TracePackWriter::close(std::string* error) {
  if (closed_) {
    if (failed_ && error != nullptr) *error = error_;
    return !failed_;
  }
  closed_ = true;
  flush_block();
  if (!failed_) {
    // Index footer: one fixed-width entry per block + trailing checksum.
    std::vector<std::uint8_t> footer;
    footer.reserve(index_.size() * kPackIndexEntrySize + 8);
    auto put_u32 = [&footer](std::uint32_t value) {
      for (int i = 0; i < 4; ++i) {
        footer.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
      }
    };
    auto put_u64 = [&footer](std::uint64_t value) {
      for (int i = 0; i < 8; ++i) {
        footer.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
      }
    };
    for (const PackBlockInfo& info : index_) {
      put_u64(info.offset);
      put_u64(info.first_op);
      put_u32(info.comp_size);
      put_u32(info.raw_size);
      put_u32(info.op_count);
      put_u32(0);
      put_u64(info.checksum);
    }
    const std::uint64_t index_checksum = fnv1a64(footer.data(), footer.size());
    put_u64(index_checksum);
    if (std::fwrite(footer.data(), 1, footer.size(), file_) !=
        footer.size()) {
      io_fail(str_format("short write to '%s'", tmp_path_.c_str()));
    }
  }
  if (!failed_) {
    PackHeader header;
    header.total_ops = digest_.ops();
    header.content_digest = digest_.value();
    header.index_offset = offset_;
    header.block_count = static_cast<std::uint32_t>(index_.size());
    header.block_ops = block_ops_;
    std::uint8_t bytes[kPackHeaderSize];
    header.encode(bytes);
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(bytes, 1, kPackHeaderSize, file_) != kPackHeaderSize) {
      io_fail(str_format("cannot patch header of '%s'", tmp_path_.c_str()));
    }
  }
  if (!failed_) {
    if (std::fclose(file_) != 0) {
      file_ = nullptr;
      failed_ = true;
      error_ = str_format("short write to '%s'", tmp_path_.c_str());
      std::remove(tmp_path_.c_str());
    } else {
      file_ = nullptr;
      if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
        failed_ = true;
        error_ = str_format("cannot rename '%s' to '%s': %s",
                            tmp_path_.c_str(), path_.c_str(),
                            std::strerror(errno));
        std::remove(tmp_path_.c_str());
      }
    }
  }
  if (failed_ && error != nullptr) *error = error_;
  return !failed_;
}

}  // namespace ringclu
