#pragma once

/// \file pack_format.h
/// On-disk layout constants for the RCLP block-compressed trace-pack
/// format (DESIGN.md §14).  A pack is:
///
///   [64-byte header] [block 0] ... [block N-1] [index footer]
///
/// Header (fixed-width little-endian):
///   off  0  u32  magic            "RCLP"
///   off  4  u16  format version   kPackFormatVersion
///   off  6  u16  op schema        kPackOpSchemaVersion (compat field:
///                                 bumps when MicroOp encoding semantics
///                                 change, like kSimSchemaVersion does for
///                                 counters)
///   off  8  u64  total ops
///   off 16  u64  content digest   trace_content_digest of the op stream
///   off 24  u64  index offset     file offset of the index footer
///   off 32  u32  block count
///   off 36  u32  ops per block    (every block but the last holds exactly
///                                 this many ops)
///   off 40  u32  flags            0; reserved for future encodings
///   off 44  u32  reserved         0
///   off 48  u64  header checksum  fnv1a64 over bytes [0, 48)
///   off 56  u64  reserved         0
///
/// Each block is the varint/delta op encoding (block_codec.h) compressed
/// with the dependency-free LZ scheme, fully self-contained: delta
/// baselines restart at zero so any block decodes without its
/// predecessors — the property the seek-based restore_pos needs.
///
/// Index footer: block count entries of kPackIndexEntrySize bytes
///   u64 offset | u64 first op | u32 compressed size | u32 raw size |
///   u32 op count | u32 reserved(0) | u64 fnv1a64 of compressed bytes
/// followed by one u64 fnv1a64 over all entry bytes.
///
/// Compat rules: readers reject unknown magic, format version, op schema
/// or nonzero flags (never misread), and every size/offset/checksum is
/// validated before use so adversarial bytes diagnose instead of
/// corrupting — same contract as core/checkpoint.h.  Writes are atomic
/// (unique temp file + rename) in the checkpoint style.

#include <cstddef>
#include <cstdint>
#include <string>

#include "isa/micro_op.h"

namespace ringclu {

inline constexpr std::uint32_t kPackMagic = 0x504C4352;  // "RCLP"
inline constexpr std::uint16_t kPackFormatVersion = 1;

/// Compat field for the op encoding itself: bump when the block record
/// layout or MicroOp field semantics change so old packs are rejected,
/// independent of the container format version.
inline constexpr std::uint16_t kPackOpSchemaVersion = 1;

inline constexpr std::uint32_t kPackDefaultBlockOps = 4096;
inline constexpr std::size_t kPackHeaderSize = 64;
inline constexpr std::size_t kPackIndexEntrySize = 40;

/// Canonical pack filename extension; the registry scans for it and the
/// CLIs dispatch on it.
inline constexpr std::string_view kPackExtension = ".rclp";

/// FNV-1a 64-bit over a byte range; the pack's only hash (checksums and
/// the content digest).  Deterministic, dependency-free, endian-stable.
[[nodiscard]] std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                                    std::uint64_t seed = 14695981039346656037ULL);

/// Streaming digest over a micro-op sequence.  Hashes a canonical
/// fixed-width serialization of exactly the fields an op semantically
/// carries (memory fields only for loads/stores, branch fields only for
/// branches), so the digest of a stream is identical whether it came from
/// the synthetic generator, a v1 trace file or a pack — the pack<->v1
/// round-trip equality contract.
class TraceDigest {
 public:
  void add(const MicroOp& op);
  [[nodiscard]] std::uint64_t value() const { return state_; }
  [[nodiscard]] std::uint64_t ops() const { return ops_; }

 private:
  void byte(std::uint8_t value) {
    state_ ^= value;
    state_ *= 1099511628211ULL;
  }
  void word(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      byte(static_cast<std::uint8_t>(value >> shift));
    }
  }

  std::uint64_t state_ = 14695981039346656037ULL;
  std::uint64_t ops_ = 0;
};

/// 16 lowercase hex digits, the digest rendering used in pack names
/// ("trace:<stem>@<digest>") and tool output.
[[nodiscard]] std::string format_digest(std::uint64_t digest);

/// Decoded header fields (see layout above).
struct PackHeader {
  std::uint16_t format_version = kPackFormatVersion;
  std::uint16_t op_schema = kPackOpSchemaVersion;
  std::uint64_t total_ops = 0;
  std::uint64_t content_digest = 0;
  std::uint64_t index_offset = 0;
  std::uint32_t block_count = 0;
  std::uint32_t block_ops = kPackDefaultBlockOps;
  std::uint32_t flags = 0;

  /// Serializes to the fixed 64-byte layout (checksum computed here).
  void encode(std::uint8_t out[kPackHeaderSize]) const;

  /// Validates magic, versions, flags and checksum.  Returns false with
  /// \p error set (never aborts) on any mismatch.
  [[nodiscard]] static bool decode(const std::uint8_t* data, std::size_t size,
                                   PackHeader& out, std::string* error);
};

/// One index-footer entry.
struct PackBlockInfo {
  std::uint64_t offset = 0;    ///< file offset of the compressed block
  std::uint64_t first_op = 0;  ///< stream index of the block's first op
  std::uint32_t comp_size = 0;
  std::uint32_t raw_size = 0;
  std::uint32_t op_count = 0;
  std::uint64_t checksum = 0;  ///< fnv1a64 of the compressed bytes
};

}  // namespace ringclu
