#pragma once

/// \file block_codec.h
/// The two per-block transforms of the RCLP pack format: the varint/delta
/// micro-op record encoding (the v1 trace_file scheme with block-local
/// delta baselines, so blocks are self-contained) and a dependency-free
/// LZ-style byte compressor.  Both decoders are fully bounds-checked and
/// never abort: malformed input returns false with \p error set —
/// adversarial bytes must diagnose, not corrupt (fuzz-pinned).
///
/// Record layout (one per op, all varints LEB128, deltas zig-zag):
///   u8 flags (1=dst, 2=src0, 4=src1, 8=taken) | u8 op class |
///   u8 branch kind | varint pc delta | [u8 dst] [u8 src0] [u8 src1] |
///   mem ops: varint addr delta, u8 size | branches: varint target
///
/// Compressed stream: a sequence of varint-led commands until exactly
/// raw_size output bytes are produced.
///   even command v: literal run of (v>>1)+1 bytes, which follow verbatim
///   odd  command v: match of length (v>>1)+kPackMinMatch at varint
///                   distance d in [1, bytes produced so far]

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/micro_op.h"

namespace ringclu {

inline constexpr std::size_t kPackMinMatch = 4;

/// Encodes \p ops as one self-contained block (delta baselines start at
/// zero), appending to \p out.
void encode_ops_block(std::span<const MicroOp> ops,
                      std::vector<std::uint8_t>& out);

/// Decodes exactly \p op_count records from \p raw into \p out (appended).
/// False with \p error set on truncation, oversized varints, trailing
/// garbage, or out-of-range class/kind/register bytes.
[[nodiscard]] bool decode_ops_block(std::span<const std::uint8_t> raw,
                                    std::uint32_t op_count,
                                    std::vector<MicroOp>& out,
                                    std::string* error);

/// Compresses \p raw (deterministic greedy LZ), appending to \p out.
void pack_compress(std::span<const std::uint8_t> raw,
                   std::vector<std::uint8_t>& out);

/// Decompresses \p comp to exactly \p raw_size bytes (appended to \p out).
/// False with \p error set on any malformed command, bad distance, or
/// output-size mismatch.
[[nodiscard]] bool pack_decompress(std::span<const std::uint8_t> comp,
                                   std::size_t raw_size,
                                   std::vector<std::uint8_t>& out,
                                   std::string* error);

}  // namespace ringclu
