#include "trace/pack/pack_format.h"

#include <cstring>

#include "util/format.h"

namespace ringclu {
namespace {

void put_u16(std::uint8_t* out, std::uint16_t value) {
  out[0] = static_cast<std::uint8_t>(value);
  out[1] = static_cast<std::uint8_t>(value >> 8);
}

void put_u32(std::uint8_t* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void put_u64(std::uint8_t* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] |
                                    (static_cast<std::uint16_t>(in[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

bool header_error(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                      std::uint64_t seed) {
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < size; ++i) {
    state ^= data[i];
    state *= 1099511628211ULL;
  }
  return state;
}

void TraceDigest::add(const MicroOp& op) {
  word(op.pc);
  byte(static_cast<std::uint8_t>(op.cls));
  byte(op.dst.valid() ? static_cast<std::uint8_t>(op.dst.flat()) : 0xff);
  byte(op.src[0].valid() ? static_cast<std::uint8_t>(op.src[0].flat()) : 0xff);
  byte(op.src[1].valid() ? static_cast<std::uint8_t>(op.src[1].flat()) : 0xff);
  if (op.is_mem()) {
    word(op.mem_addr);
    byte(op.mem_size);
  }
  if (op.is_branch()) {
    byte(static_cast<std::uint8_t>(op.branch_kind));
    byte(op.taken ? 1 : 0);
    word(op.target);
  }
  ++ops_;
}

std::string format_digest(std::uint64_t digest) {
  return str_format("%016llx", static_cast<unsigned long long>(digest));
}

void PackHeader::encode(std::uint8_t out[kPackHeaderSize]) const {
  std::memset(out, 0, kPackHeaderSize);
  put_u32(out + 0, kPackMagic);
  put_u16(out + 4, format_version);
  put_u16(out + 6, op_schema);
  put_u64(out + 8, total_ops);
  put_u64(out + 16, content_digest);
  put_u64(out + 24, index_offset);
  put_u32(out + 32, block_count);
  put_u32(out + 36, block_ops);
  put_u32(out + 40, flags);
  put_u64(out + 48, fnv1a64(out, 48));
}

bool PackHeader::decode(const std::uint8_t* data, std::size_t size,
                        PackHeader& out, std::string* error) {
  if (size < kPackHeaderSize) {
    return header_error(error, "truncated header");
  }
  if (get_u32(data + 0) != kPackMagic) {
    return header_error(error, "bad magic (not an RCLP trace pack)");
  }
  if (get_u64(data + 48) != fnv1a64(data, 48)) {
    return header_error(error, "header checksum mismatch");
  }
  out.format_version = get_u16(data + 4);
  out.op_schema = get_u16(data + 6);
  if (out.format_version != kPackFormatVersion) {
    return header_error(error, "unsupported pack format version");
  }
  if (out.op_schema != kPackOpSchemaVersion) {
    return header_error(error, "unsupported pack op schema");
  }
  out.total_ops = get_u64(data + 8);
  out.content_digest = get_u64(data + 16);
  out.index_offset = get_u64(data + 24);
  out.block_count = get_u32(data + 32);
  out.block_ops = get_u32(data + 36);
  out.flags = get_u32(data + 40);
  if (out.flags != 0) {
    return header_error(error, "unsupported pack flags");
  }
  if (out.block_ops == 0) {
    return header_error(error, "zero ops-per-block");
  }
  return true;
}

}  // namespace ringclu
