#include "trace/pack/block_codec.h"

#include <cstddef>

#include "isa/reg.h"

namespace ringclu {
namespace {

constexpr std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

// Flags byte layout (identical to the v1 trace_file records).
constexpr std::uint8_t kHasDst = 1u << 0;
constexpr std::uint8_t kHasSrc0 = 1u << 1;
constexpr std::uint8_t kHasSrc1 = 1u << 2;
constexpr std::uint8_t kTaken = 1u << 3;
constexpr std::uint8_t kKnownFlags = kHasDst | kHasSrc0 | kHasSrc1 | kTaken;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Bounds-checked byte cursor shared by both decoders: every failure is
/// sticky and carries a message, so callers surface one diagnostic.
class ByteCursor {
 public:
  explicit ByteCursor(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] bool at_end() const { return pos_ >= data_.size(); }

  void fail(const char* message) {
    if (ok_) {
      ok_ = false;
      error_ = message;
    }
  }

  [[nodiscard]] std::uint8_t u8() {
    if (!ok_) return 0;
    if (pos_ >= data_.size()) {
      fail("truncated record");
      return 0;
    }
    return data_[pos_++];
  }

  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t byte = u8();
      if (!ok_) return 0;
      if (shift == 63 && (byte & 0x7e) != 0) {
        fail("oversized varint");
        return 0;
      }
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
      if (shift >= 64) {
        fail("oversized varint");
        return 0;
      }
    }
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

[[nodiscard]] bool decode_reg(std::uint8_t flat, RegId& out) {
  if (flat >= kNumFlatArchRegs) return false;
  const RegClass cls =
      flat >= kArchRegsPerClass ? RegClass::Fp : RegClass::Int;
  out = RegId::make(cls, flat % kArchRegsPerClass);
  return true;
}

}  // namespace

void encode_ops_block(std::span<const MicroOp> ops,
                      std::vector<std::uint8_t>& out) {
  std::uint64_t last_pc = 0;
  std::uint64_t last_addr = 0;
  for (const MicroOp& op : ops) {
    std::uint8_t flags = 0;
    if (op.dst.valid()) flags |= kHasDst;
    if (op.src[0].valid()) flags |= kHasSrc0;
    if (op.src[1].valid()) flags |= kHasSrc1;
    if (op.taken) flags |= kTaken;
    out.push_back(flags);
    out.push_back(static_cast<std::uint8_t>(op.cls));
    out.push_back(static_cast<std::uint8_t>(op.branch_kind));
    put_varint(out, zigzag(static_cast<std::int64_t>(op.pc - last_pc)));
    last_pc = op.pc;
    if (op.dst.valid()) {
      out.push_back(static_cast<std::uint8_t>(op.dst.flat()));
    }
    if (op.src[0].valid()) {
      out.push_back(static_cast<std::uint8_t>(op.src[0].flat()));
    }
    if (op.src[1].valid()) {
      out.push_back(static_cast<std::uint8_t>(op.src[1].flat()));
    }
    if (op.is_mem()) {
      put_varint(out,
                 zigzag(static_cast<std::int64_t>(op.mem_addr - last_addr)));
      out.push_back(op.mem_size);
      last_addr = op.mem_addr;
    }
    if (op.is_branch()) {
      put_varint(out, op.target);
    }
  }
}

bool decode_ops_block(std::span<const std::uint8_t> raw,
                      std::uint32_t op_count, std::vector<MicroOp>& out,
                      std::string* error) {
  ByteCursor in(raw);
  std::uint64_t last_pc = 0;
  std::uint64_t last_addr = 0;
  for (std::uint32_t i = 0; i < op_count; ++i) {
    MicroOp op;
    const std::uint8_t flags = in.u8();
    const std::uint8_t cls = in.u8();
    const std::uint8_t branch_kind = in.u8();
    if (!in.ok()) return set_error(error, in.error());
    if ((flags & ~kKnownFlags) != 0) {
      return set_error(error, "bad record flags");
    }
    if (cls >= kNumOpClasses) {
      return set_error(error, "bad op class");
    }
    if (branch_kind > static_cast<std::uint8_t>(BranchKind::Return)) {
      return set_error(error, "bad branch kind");
    }
    op.cls = static_cast<OpClass>(cls);
    op.branch_kind = static_cast<BranchKind>(branch_kind);
    op.taken = (flags & kTaken) != 0;
    last_pc += static_cast<std::uint64_t>(unzigzag(in.varint()));
    op.pc = last_pc;
    if (flags & kHasDst) {
      if (!decode_reg(in.u8(), op.dst)) {
        return set_error(error, in.ok() ? "bad register byte" : in.error());
      }
    }
    if (flags & kHasSrc0) {
      if (!decode_reg(in.u8(), op.src[0])) {
        return set_error(error, in.ok() ? "bad register byte" : in.error());
      }
    }
    if (flags & kHasSrc1) {
      if (!decode_reg(in.u8(), op.src[1])) {
        return set_error(error, in.ok() ? "bad register byte" : in.error());
      }
    }
    if (op.is_mem()) {
      last_addr += static_cast<std::uint64_t>(unzigzag(in.varint()));
      op.mem_addr = last_addr;
      op.mem_size = in.u8();
    }
    if (op.is_branch()) {
      op.target = in.varint();
    }
    if (!in.ok()) return set_error(error, in.error());
    out.push_back(op);
  }
  if (!in.at_end()) {
    return set_error(error, "trailing bytes after last record");
  }
  return true;
}

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kWindow = 1u << 16;
constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

std::uint32_t hash4(const std::uint8_t* data) {
  const std::uint32_t word = static_cast<std::uint32_t>(data[0]) |
                             (static_cast<std::uint32_t>(data[1]) << 8) |
                             (static_cast<std::uint32_t>(data[2]) << 16) |
                             (static_cast<std::uint32_t>(data[3]) << 24);
  return (word * 2654435761u) >> (32 - kHashBits);
}

void emit_literals(std::span<const std::uint8_t> raw, std::size_t begin,
                   std::size_t end, std::vector<std::uint8_t>& out) {
  if (begin >= end) return;
  const std::size_t run = end - begin;
  put_varint(out, (static_cast<std::uint64_t>(run) - 1) << 1);
  out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(begin),
             raw.begin() + static_cast<std::ptrdiff_t>(end));
}

}  // namespace

void pack_compress(std::span<const std::uint8_t> raw,
                   std::vector<std::uint8_t>& out) {
  const std::size_t size = raw.size();
  std::vector<std::size_t> head(1u << kHashBits, kNoPos);
  std::size_t literal_start = 0;
  std::size_t pos = 0;
  while (pos + kPackMinMatch <= size) {
    const std::uint32_t slot = hash4(raw.data() + pos);
    const std::size_t candidate = head[slot];
    head[slot] = pos;
    if (candidate != kNoPos && pos - candidate <= kWindow &&
        raw[candidate] == raw[pos] && raw[candidate + 1] == raw[pos + 1] &&
        raw[candidate + 2] == raw[pos + 2] &&
        raw[candidate + 3] == raw[pos + 3]) {
      std::size_t length = kPackMinMatch;
      while (pos + length < size &&
             raw[candidate + length] == raw[pos + length]) {
        ++length;
      }
      emit_literals(raw, literal_start, pos, out);
      put_varint(out, ((static_cast<std::uint64_t>(length) - kPackMinMatch)
                       << 1) |
                          1);
      put_varint(out, pos - candidate);
      // Index the skipped positions so later matches can reference them.
      const std::size_t stop =
          size >= kPackMinMatch ? size - kPackMinMatch : 0;
      for (std::size_t i = pos + 1; i < pos + length && i <= stop; ++i) {
        head[hash4(raw.data() + i)] = i;
      }
      pos += length;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  emit_literals(raw, literal_start, size, out);
}

bool pack_decompress(std::span<const std::uint8_t> comp, std::size_t raw_size,
                     std::vector<std::uint8_t>& out, std::string* error) {
  ByteCursor in(comp);
  const std::size_t base = out.size();
  std::size_t produced = 0;
  while (produced < raw_size) {
    const std::uint64_t command = in.varint();
    if (!in.ok()) return set_error(error, in.error());
    if ((command & 1) == 0) {
      const std::uint64_t run = (command >> 1) + 1;
      if (run > raw_size - produced) {
        return set_error(error, "literal run overflows block");
      }
      for (std::uint64_t i = 0; i < run; ++i) {
        out.push_back(in.u8());
      }
      if (!in.ok()) return set_error(error, in.error());
      produced += run;
    } else {
      const std::uint64_t length = (command >> 1) + kPackMinMatch;
      const std::uint64_t distance = in.varint();
      if (!in.ok()) return set_error(error, in.error());
      if (distance == 0 || distance > produced) {
        return set_error(error, "match distance out of range");
      }
      if (length > raw_size - produced) {
        return set_error(error, "match length overflows block");
      }
      // Byte-wise copy: overlapping matches (distance < length) are the
      // run-length idiom and must replicate already-copied bytes.
      std::size_t src = base + produced - distance;
      for (std::uint64_t i = 0; i < length; ++i) {
        out.push_back(out[src + i]);
      }
      produced += length;
    }
  }
  if (!in.at_end()) {
    return set_error(error, "trailing bytes after compressed stream");
  }
  return true;
}

}  // namespace ringclu
