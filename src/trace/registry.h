#pragma once

/// \file registry.h
/// The trace benchmark registry: every `.rclp` pack found in a registered
/// directory becomes a named benchmark ("trace:<stem>") usable anywhere a
/// synthetic suite name is — single runs, --matrix, --sweep,
/// ExperimentSpec and the daemon wire format — without those layers
/// knowing traces exist.  Directories come from RINGCLU_TRACE_DIR
/// (colon-separated, scanned lazily on first lookup) and the CLIs'
/// --trace-dir flag.
///
/// Cache identity: every pack carries a content digest, and
/// keyed_workload_name() maps "trace:<stem>" to "trace:<stem>@<digest>"
/// for sim_cache_key / coalescing, so renaming a file never aliases
/// results and identical content dedups across hosts regardless of
/// filename.  TracePackReader::name() returns the same keyed form, which
/// makes checkpoint workload identity content-addressed too.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace_source.h"

namespace ringclu {

inline constexpr std::string_view kTraceBenchmarkPrefix = "trace:";

/// True for names claimed by the registry namespace ("trace:...").
[[nodiscard]] bool is_trace_benchmark_name(std::string_view name);

/// One registered pack.
struct TraceBenchmarkInfo {
  std::string name;  ///< "trace:<stem>"
  std::string path;
  std::uint64_t total_ops = 0;
  std::uint64_t digest = 0;
};

/// Name -> pack map.  Thread-safe (server workers resolve concurrently)
/// and deterministic: names iterate sorted, and the first registration of
/// a name wins so directory precedence is scan order.
class TraceBenchmarkRegistry {
 public:
  [[nodiscard]] static TraceBenchmarkRegistry& global();

  /// Scans \p dir for *.rclp files with a valid header/index; returns how
  /// many new names were registered.  Unreadable or invalid packs are
  /// skipped with a stderr warning (a bad file must not take down
  /// discovery of its siblings).
  int add_dir(const std::string& dir);

  [[nodiscard]] std::optional<TraceBenchmarkInfo> find(
      std::string_view name) const;
  [[nodiscard]] std::vector<TraceBenchmarkInfo> list() const;
  /// Registered names joined with ", " (error messages / --list).
  [[nodiscard]] std::string names_joined() const;
  [[nodiscard]] bool empty() const;

  /// Drops all entries and re-arms the RINGCLU_TRACE_DIR scan (tests).
  void clear();

 private:
  void ensure_env_scanned() const;
  int add_dir_locked(const std::string& dir);

  mutable std::mutex mutex_;
  mutable bool env_scanned_ = false;
  std::map<std::string, TraceBenchmarkInfo> entries_;
};

/// Benchmark -> trace source for every namespace the harness accepts:
/// the synthetic suite and registered "trace:" packs (the seed is unused
/// for packs — the stream is the recording).  \pre the name validated
/// via validate_benchmark_names (aborts on unknown names, like
/// make_benchmark_trace).
[[nodiscard]] std::unique_ptr<TraceSource> make_workload_trace(
    std::string_view benchmark, std::uint64_t seed);

/// The cache-key form of a benchmark name: registered trace benchmarks
/// fold in their content digest ("trace:<stem>@<16-hex>"); every other
/// name (synthetic, already-keyed) passes through unchanged.
[[nodiscard]] std::string keyed_workload_name(std::string_view benchmark);

}  // namespace ringclu
