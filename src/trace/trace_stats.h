#pragma once

/// \file trace_stats.h
/// Instruction-mix profiling of a trace stream, used to validate that the
/// synthetic benchmarks have the qualitative shape the paper's workloads
/// had (FP share, load/store share, branch share, dependence distances).

#include <array>
#include <cstdint>
#include <string>

#include "isa/micro_op.h"
#include "trace/trace_source.h"

namespace ringclu {

/// Aggregate mix statistics over a stream prefix.
struct TraceMix {
  std::uint64_t total = 0;
  std::array<std::uint64_t, kNumOpClasses> by_class{};
  std::uint64_t branches_taken = 0;
  std::uint64_t src_operand_count = 0;
  /// Sum over register-source operands of the dynamic distance (in
  /// instructions) to their producer; measures dependence tightness.
  std::uint64_t dep_distance_sum = 0;
  std::uint64_t dep_distance_samples = 0;

  [[nodiscard]] double fraction(OpClass cls) const {
    return total == 0 ? 0.0
                      : static_cast<double>(
                            by_class[static_cast<std::size_t>(cls)]) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double fp_fraction() const {
    return fraction(OpClass::FpAdd) + fraction(OpClass::FpMult) +
           fraction(OpClass::FpDiv);
  }
  [[nodiscard]] double mem_fraction() const {
    return fraction(OpClass::Load) + fraction(OpClass::Store);
  }
  [[nodiscard]] double branch_fraction() const {
    return fraction(OpClass::Branch);
  }
  [[nodiscard]] double mean_dep_distance() const {
    return dep_distance_samples == 0
               ? 0.0
               : static_cast<double>(dep_distance_sum) /
                     static_cast<double>(dep_distance_samples);
  }

  /// One-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

/// Profiles the first \p sample_ops micro-ops of \p source.
[[nodiscard]] TraceMix profile_trace(TraceSource& source,
                                     std::uint64_t sample_ops);

}  // namespace ringclu
