#include "trace/ingest/text_log.h"

#include <cctype>
#include <vector>

#include "util/format.h"

namespace ringclu {
namespace {

struct MnemonicEntry {
  std::string_view name;
  OpClass cls;
  BranchKind kind;
};

/// The decoder table: canonical class names first, then common x86-64,
/// AArch64 and RISC-V spellings.  Looked up after lowercasing and
/// stripping a width/condition suffix at the first '.' (so "add.w",
/// "fadd.d" and "b.eq" classify).  Linear scan: ingest is tooling, not
/// the simulation hot path.
constexpr MnemonicEntry kMnemonics[] = {
    // Canonical (op_name) spellings: what `ringclu_trace cat` emits.
    {"int_alu", OpClass::IntAlu, BranchKind::None},
    {"int_mult", OpClass::IntMult, BranchKind::None},
    {"int_div", OpClass::IntDiv, BranchKind::None},
    {"fp_add", OpClass::FpAdd, BranchKind::None},
    {"fp_mult", OpClass::FpMult, BranchKind::None},
    {"fp_div", OpClass::FpDiv, BranchKind::None},
    {"load", OpClass::Load, BranchKind::None},
    {"store", OpClass::Store, BranchKind::None},
    {"branch", OpClass::Branch, BranchKind::Conditional},
    {"nop", OpClass::Nop, BranchKind::None},
    // x86-64 integer ALU.
    {"add", OpClass::IntAlu, BranchKind::None},
    {"sub", OpClass::IntAlu, BranchKind::None},
    {"and", OpClass::IntAlu, BranchKind::None},
    {"or", OpClass::IntAlu, BranchKind::None},
    {"xor", OpClass::IntAlu, BranchKind::None},
    {"not", OpClass::IntAlu, BranchKind::None},
    {"neg", OpClass::IntAlu, BranchKind::None},
    {"shl", OpClass::IntAlu, BranchKind::None},
    {"shr", OpClass::IntAlu, BranchKind::None},
    {"sal", OpClass::IntAlu, BranchKind::None},
    {"sar", OpClass::IntAlu, BranchKind::None},
    {"rol", OpClass::IntAlu, BranchKind::None},
    {"ror", OpClass::IntAlu, BranchKind::None},
    {"cmp", OpClass::IntAlu, BranchKind::None},
    {"test", OpClass::IntAlu, BranchKind::None},
    {"mov", OpClass::IntAlu, BranchKind::None},
    {"lea", OpClass::IntAlu, BranchKind::None},
    {"inc", OpClass::IntAlu, BranchKind::None},
    {"dec", OpClass::IntAlu, BranchKind::None},
    {"adc", OpClass::IntAlu, BranchKind::None},
    {"sbb", OpClass::IntAlu, BranchKind::None},
    {"xchg", OpClass::IntAlu, BranchKind::None},
    {"cdq", OpClass::IntAlu, BranchKind::None},
    {"cqo", OpClass::IntAlu, BranchKind::None},
    {"bswap", OpClass::IntAlu, BranchKind::None},
    {"popcnt", OpClass::IntAlu, BranchKind::None},
    {"bsf", OpClass::IntAlu, BranchKind::None},
    {"bsr", OpClass::IntAlu, BranchKind::None},
    {"endbr64", OpClass::Nop, BranchKind::None},
    // x86-64 multiply / divide.
    {"imul", OpClass::IntMult, BranchKind::None},
    {"mul", OpClass::IntMult, BranchKind::None},
    {"idiv", OpClass::IntDiv, BranchKind::None},
    {"div", OpClass::IntDiv, BranchKind::None},
    // x86-64 SSE scalar FP.
    {"addss", OpClass::FpAdd, BranchKind::None},
    {"addsd", OpClass::FpAdd, BranchKind::None},
    {"subss", OpClass::FpAdd, BranchKind::None},
    {"subsd", OpClass::FpAdd, BranchKind::None},
    {"ucomiss", OpClass::FpAdd, BranchKind::None},
    {"ucomisd", OpClass::FpAdd, BranchKind::None},
    {"comiss", OpClass::FpAdd, BranchKind::None},
    {"comisd", OpClass::FpAdd, BranchKind::None},
    {"cvtsi2sd", OpClass::FpAdd, BranchKind::None},
    {"cvtsi2ss", OpClass::FpAdd, BranchKind::None},
    {"cvttsd2si", OpClass::FpAdd, BranchKind::None},
    {"cvttss2si", OpClass::FpAdd, BranchKind::None},
    {"cvtsd2ss", OpClass::FpAdd, BranchKind::None},
    {"cvtss2sd", OpClass::FpAdd, BranchKind::None},
    {"movss", OpClass::FpAdd, BranchKind::None},
    {"movsd", OpClass::FpAdd, BranchKind::None},
    {"movaps", OpClass::IntAlu, BranchKind::None},
    {"movapd", OpClass::IntAlu, BranchKind::None},
    {"movups", OpClass::IntAlu, BranchKind::None},
    {"xorps", OpClass::IntAlu, BranchKind::None},
    {"xorpd", OpClass::IntAlu, BranchKind::None},
    {"pxor", OpClass::IntAlu, BranchKind::None},
    {"mulss", OpClass::FpMult, BranchKind::None},
    {"mulsd", OpClass::FpMult, BranchKind::None},
    {"divss", OpClass::FpDiv, BranchKind::None},
    {"divsd", OpClass::FpDiv, BranchKind::None},
    {"sqrtss", OpClass::FpDiv, BranchKind::None},
    {"sqrtsd", OpClass::FpDiv, BranchKind::None},
    // x86-64 stack and control flow.
    {"push", OpClass::Store, BranchKind::None},
    {"pop", OpClass::Load, BranchKind::None},
    {"leave", OpClass::Load, BranchKind::None},
    {"enter", OpClass::Store, BranchKind::None},
    {"jmp", OpClass::Branch, BranchKind::Jump},
    {"call", OpClass::Branch, BranchKind::Call},
    {"ret", OpClass::Branch, BranchKind::Return},
    {"retq", OpClass::Branch, BranchKind::Return},
    // AArch64.
    {"ldr", OpClass::Load, BranchKind::None},
    {"ldrb", OpClass::Load, BranchKind::None},
    {"ldrh", OpClass::Load, BranchKind::None},
    {"ldrsw", OpClass::Load, BranchKind::None},
    {"ldur", OpClass::Load, BranchKind::None},
    {"ldp", OpClass::Load, BranchKind::None},
    {"str", OpClass::Store, BranchKind::None},
    {"strb", OpClass::Store, BranchKind::None},
    {"strh", OpClass::Store, BranchKind::None},
    {"stur", OpClass::Store, BranchKind::None},
    {"stp", OpClass::Store, BranchKind::None},
    {"adds", OpClass::IntAlu, BranchKind::None},
    {"subs", OpClass::IntAlu, BranchKind::None},
    {"orr", OpClass::IntAlu, BranchKind::None},
    {"eor", OpClass::IntAlu, BranchKind::None},
    {"ands", OpClass::IntAlu, BranchKind::None},
    {"bic", OpClass::IntAlu, BranchKind::None},
    {"lsl", OpClass::IntAlu, BranchKind::None},
    {"lsr", OpClass::IntAlu, BranchKind::None},
    {"asr", OpClass::IntAlu, BranchKind::None},
    {"mvn", OpClass::IntAlu, BranchKind::None},
    {"cmn", OpClass::IntAlu, BranchKind::None},
    {"ccmp", OpClass::IntAlu, BranchKind::None},
    {"tst", OpClass::IntAlu, BranchKind::None},
    {"csel", OpClass::IntAlu, BranchKind::None},
    {"cset", OpClass::IntAlu, BranchKind::None},
    {"cinc", OpClass::IntAlu, BranchKind::None},
    {"adr", OpClass::IntAlu, BranchKind::None},
    {"adrp", OpClass::IntAlu, BranchKind::None},
    {"movk", OpClass::IntAlu, BranchKind::None},
    {"movz", OpClass::IntAlu, BranchKind::None},
    {"movn", OpClass::IntAlu, BranchKind::None},
    {"sxtw", OpClass::IntAlu, BranchKind::None},
    {"uxtw", OpClass::IntAlu, BranchKind::None},
    {"ubfx", OpClass::IntAlu, BranchKind::None},
    {"bfi", OpClass::IntAlu, BranchKind::None},
    {"madd", OpClass::IntMult, BranchKind::None},
    {"msub", OpClass::IntMult, BranchKind::None},
    {"smull", OpClass::IntMult, BranchKind::None},
    {"umull", OpClass::IntMult, BranchKind::None},
    {"sdiv", OpClass::IntDiv, BranchKind::None},
    {"udiv", OpClass::IntDiv, BranchKind::None},
    {"fadd", OpClass::FpAdd, BranchKind::None},
    {"fsub", OpClass::FpAdd, BranchKind::None},
    {"fcmp", OpClass::FpAdd, BranchKind::None},
    {"fcvt", OpClass::FpAdd, BranchKind::None},
    {"scvtf", OpClass::FpAdd, BranchKind::None},
    {"fcvtzs", OpClass::FpAdd, BranchKind::None},
    {"fmov", OpClass::FpAdd, BranchKind::None},
    {"fmul", OpClass::FpMult, BranchKind::None},
    {"fmadd", OpClass::FpMult, BranchKind::None},
    {"fmsub", OpClass::FpMult, BranchKind::None},
    {"fdiv", OpClass::FpDiv, BranchKind::None},
    {"fsqrt", OpClass::FpDiv, BranchKind::None},
    {"b", OpClass::Branch, BranchKind::Jump},
    {"br", OpClass::Branch, BranchKind::Jump},
    {"bl", OpClass::Branch, BranchKind::Call},
    {"blr", OpClass::Branch, BranchKind::Call},
    {"cbz", OpClass::Branch, BranchKind::Conditional},
    {"cbnz", OpClass::Branch, BranchKind::Conditional},
    {"tbz", OpClass::Branch, BranchKind::Conditional},
    {"tbnz", OpClass::Branch, BranchKind::Conditional},
    // RISC-V.
    {"lb", OpClass::Load, BranchKind::None},
    {"lbu", OpClass::Load, BranchKind::None},
    {"lh", OpClass::Load, BranchKind::None},
    {"lhu", OpClass::Load, BranchKind::None},
    {"lw", OpClass::Load, BranchKind::None},
    {"lwu", OpClass::Load, BranchKind::None},
    {"ld", OpClass::Load, BranchKind::None},
    {"flw", OpClass::Load, BranchKind::None},
    {"fld", OpClass::Load, BranchKind::None},
    {"sb", OpClass::Store, BranchKind::None},
    {"sh", OpClass::Store, BranchKind::None},
    {"sw", OpClass::Store, BranchKind::None},
    {"sd", OpClass::Store, BranchKind::None},
    {"fsw", OpClass::Store, BranchKind::None},
    {"fsd", OpClass::Store, BranchKind::None},
    {"addi", OpClass::IntAlu, BranchKind::None},
    {"addiw", OpClass::IntAlu, BranchKind::None},
    {"addw", OpClass::IntAlu, BranchKind::None},
    {"subw", OpClass::IntAlu, BranchKind::None},
    {"andi", OpClass::IntAlu, BranchKind::None},
    {"ori", OpClass::IntAlu, BranchKind::None},
    {"xori", OpClass::IntAlu, BranchKind::None},
    {"slli", OpClass::IntAlu, BranchKind::None},
    {"srli", OpClass::IntAlu, BranchKind::None},
    {"srai", OpClass::IntAlu, BranchKind::None},
    {"slt", OpClass::IntAlu, BranchKind::None},
    {"slti", OpClass::IntAlu, BranchKind::None},
    {"sltu", OpClass::IntAlu, BranchKind::None},
    {"sltiu", OpClass::IntAlu, BranchKind::None},
    {"mv", OpClass::IntAlu, BranchKind::None},
    {"li", OpClass::IntAlu, BranchKind::None},
    {"lui", OpClass::IntAlu, BranchKind::None},
    {"auipc", OpClass::IntAlu, BranchKind::None},
    {"sext", OpClass::IntAlu, BranchKind::None},
    {"mulh", OpClass::IntMult, BranchKind::None},
    {"mulw", OpClass::IntMult, BranchKind::None},
    {"divw", OpClass::IntDiv, BranchKind::None},
    {"rem", OpClass::IntDiv, BranchKind::None},
    {"remu", OpClass::IntDiv, BranchKind::None},
    {"remw", OpClass::IntDiv, BranchKind::None},
    {"beq", OpClass::Branch, BranchKind::Conditional},
    {"bne", OpClass::Branch, BranchKind::Conditional},
    {"blt", OpClass::Branch, BranchKind::Conditional},
    {"bltu", OpClass::Branch, BranchKind::Conditional},
    {"bge", OpClass::Branch, BranchKind::Conditional},
    {"bgeu", OpClass::Branch, BranchKind::Conditional},
    {"bgt", OpClass::Branch, BranchKind::Conditional},
    {"ble", OpClass::Branch, BranchKind::Conditional},
    {"bhi", OpClass::Branch, BranchKind::Conditional},
    {"blo", OpClass::Branch, BranchKind::Conditional},
    {"bls", OpClass::Branch, BranchKind::Conditional},
    {"bcc", OpClass::Branch, BranchKind::Conditional},
    {"bcs", OpClass::Branch, BranchKind::Conditional},
    {"bmi", OpClass::Branch, BranchKind::Conditional},
    {"bpl", OpClass::Branch, BranchKind::Conditional},
    {"beqz", OpClass::Branch, BranchKind::Conditional},
    {"bnez", OpClass::Branch, BranchKind::Conditional},
    {"j", OpClass::Branch, BranchKind::Jump},
    {"jal", OpClass::Branch, BranchKind::Call},
    {"jalr", OpClass::Branch, BranchKind::Call},
    {"jr", OpClass::Branch, BranchKind::Jump},
};

std::string lowercase(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<MnemonicInfo> lookup(std::string_view name) {
  for (const MnemonicEntry& entry : kMnemonics) {
    if (entry.name == name) return MnemonicInfo{entry.cls, entry.kind};
  }
  return std::nullopt;
}

[[nodiscard]] bool parse_hex(std::string_view text, std::uint64_t& out) {
  if (text.size() >= 2 && text[0] == '0' &&
      (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
  }
  if (text.empty() || text.size() > 16) return false;
  out = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    out = (out << 4) | static_cast<std::uint64_t>(digit);
  }
  return true;
}

[[nodiscard]] bool parse_reg(std::string_view text, RegId& out) {
  if (text.size() < 2 || (text[0] != 'i' && text[0] != 'f')) return false;
  int index = 0;
  for (const char c : text.substr(1)) {
    if (c < '0' || c > '9') return false;
    index = index * 10 + (c - '0');
    if (index >= kArchRegsPerClass) return false;
  }
  out = RegId::make(text[0] == 'i' ? RegClass::Int : RegClass::Fp, index);
  return true;
}

[[nodiscard]] std::string_view branch_kind_name(BranchKind kind) {
  switch (kind) {
    case BranchKind::None: return "none";
    case BranchKind::Conditional: return "cond";
    case BranchKind::Jump: return "jump";
    case BranchKind::Call: return "call";
    case BranchKind::Return: return "ret";
  }
  return "?";
}

[[nodiscard]] bool parse_branch_kind(std::string_view text, BranchKind& out) {
  if (text == "none") {
    out = BranchKind::None;
  } else if (text == "cond") {
    out = BranchKind::Conditional;
  } else if (text == "jump") {
    out = BranchKind::Jump;
  } else if (text == "call") {
    out = BranchKind::Call;
  } else if (text == "ret") {
    out = BranchKind::Return;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    const std::size_t start = pos;
    while (pos < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

}  // namespace

std::optional<MnemonicInfo> classify_mnemonic(std::string_view mnemonic) {
  const std::string lower = lowercase(mnemonic);
  std::string_view name = lower;
  if (auto info = lookup(name)) return info;
  // AArch64 "b.<cond>" before generic suffix stripping, which would
  // reduce it to the unconditional "b".
  if (starts_with(name, "b.")) {
    return MnemonicInfo{OpClass::Branch, BranchKind::Conditional};
  }
  // Width/rounding suffixes: "fadd.d", "add.w", "sext.w".
  const std::size_t dot = name.find('.');
  if (dot != std::string_view::npos) {
    if (auto info = lookup(name.substr(0, dot))) return info;
  }
  // Spelled-out condition codes and predicated moves.
  if (starts_with(name, "j")) {
    return MnemonicInfo{OpClass::Branch, BranchKind::Conditional};
  }
  if (starts_with(name, "set") || starts_with(name, "cmov")) {
    return MnemonicInfo{OpClass::IntAlu, BranchKind::None};
  }
  if (starts_with(name, "movz") || starts_with(name, "movs") ||
      starts_with(name, "movabs")) {
    return MnemonicInfo{OpClass::IntAlu, BranchKind::None};
  }
  // Padding/hint encodings: "nopl", "nopw", "endbr64", prefetches.
  if (starts_with(name, "nop") || starts_with(name, "endbr") ||
      starts_with(name, "prefetch") || starts_with(name, "hint")) {
    return MnemonicInfo{OpClass::Nop, BranchKind::None};
  }
  // Sign/zero width conversions: "cltq", "cdqe", "cwtl", "cbtw", ...
  if (name.size() == 4 &&
      (starts_with(name, "c") &&
       (name[2] == 't' || name == "cdqe" || name == "cqde"))) {
    return MnemonicInfo{OpClass::IntAlu, BranchKind::None};
  }
  // AVX: strip the 'v' prefix and retry ("vaddsd" -> "addsd").
  if (name.size() > 1 && name[0] == 'v') {
    if (auto info = lookup(name.substr(1))) return info;
  }
  // SSE/MMX packed-integer and shuffle families execute in the SIMD
  // (FP-cluster) pipes: "punpckldq", "paddq", "pshufb", "movdqa", ...
  for (const std::string_view stem :
       {"punpck", "pack", "padd", "psub", "pand", "pandn", "por", "pxor",
        "pcmp", "pshuf", "psll", "psrl", "psra", "pmin", "pmax", "pavg",
        "pabs", "pext", "pins", "movdq", "movapd", "movaps", "movupd",
        "movups", "shufp", "unpckl", "unpckh", "movd", "palignr",
        "pblend", "ptest", "pmovmsk"}) {
    if (starts_with(name, stem)) {
      return MnemonicInfo{OpClass::FpAdd, BranchKind::None};
    }
  }
  if (starts_with(name, "pmul") || starts_with(name, "pmadd")) {
    return MnemonicInfo{OpClass::FpMult, BranchKind::None};
  }
  // AT&T size suffixes: "addq" -> "add", "cmpb" -> "cmp".
  if (name.size() > 2) {
    const char last = name.back();
    if (last == 'b' || last == 'w' || last == 'l' || last == 'q') {
      if (auto info = lookup(name.substr(0, name.size() - 1))) return info;
    }
  }
  return std::nullopt;
}

TextLogParser::Line TextLogParser::parse(std::string_view line,
                                         MicroOp& out) {
  ++line_number_;
  const std::vector<std::string_view> tokens = tokenize(line);
  if (tokens.empty() || tokens[0][0] == '#') return Line::Skip;
  auto fail = [this](const std::string& what) {
    error_ = str_format("line %zu: %s", line_number_, what.c_str());
    return Line::Error;
  };
  if (tokens.size() < 2) {
    return fail("want '<pc> <mnemonic> [fields...]'");
  }
  out = MicroOp{};
  if (!parse_hex(tokens[0], out.pc)) {
    return fail("bad pc '" + std::string(tokens[0]) + "'");
  }
  const auto info = classify_mnemonic(tokens[1]);
  if (!info) {
    return fail("unknown mnemonic '" + std::string(tokens[1]) + "'");
  }
  out.cls = info->cls;
  out.branch_kind = info->branch_kind;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    if (token[0] == '#') break;  // trailing comment
    if (token.size() < 3 || token[1] != '=') {
      return fail("bad field '" + std::string(token) + "'");
    }
    const std::string_view value = token.substr(2);
    switch (token[0]) {
      case 'd': {
        if (!parse_reg(value, out.dst)) {
          return fail("bad register '" + std::string(value) + "'");
        }
        break;
      }
      case 's': {
        const std::size_t comma = value.find(',');
        const std::string_view first =
            comma == std::string_view::npos ? value : value.substr(0, comma);
        if (!parse_reg(first, out.src[0])) {
          return fail("bad register '" + std::string(first) + "'");
        }
        if (comma != std::string_view::npos) {
          const std::string_view second = value.substr(comma + 1);
          if (!parse_reg(second, out.src[1])) {
            return fail("bad register '" + std::string(second) + "'");
          }
        }
        break;
      }
      case 'm': {
        if (!out.is_mem()) {
          return fail("memory field on non-memory op");
        }
        const std::size_t colon = value.find(':');
        std::uint64_t size = 8;
        const std::string_view addr_text =
            colon == std::string_view::npos ? value : value.substr(0, colon);
        if (!parse_hex(addr_text, out.mem_addr)) {
          return fail("bad memory address '" + std::string(addr_text) + "'");
        }
        if (colon != std::string_view::npos) {
          size = 0;
          for (const char c : value.substr(colon + 1)) {
            if (c < '0' || c > '9') {
              return fail("bad memory size in '" + std::string(value) + "'");
            }
            size = size * 10 + static_cast<std::uint64_t>(c - '0');
          }
          if (size == 0 || size > 255) {
            return fail("bad memory size in '" + std::string(value) + "'");
          }
        }
        out.mem_size = static_cast<std::uint8_t>(size);
        break;
      }
      case 'b': {
        if (!out.is_branch()) {
          return fail("branch field on non-branch op");
        }
        std::vector<std::string> parts;
        std::size_t start = 0;
        for (std::size_t p = 0; p <= value.size(); ++p) {
          if (p == value.size() || value[p] == ':') {
            parts.emplace_back(value.substr(start, p - start));
            start = p + 1;
          }
        }
        if (parts.size() < 2 || parts.size() > 3) {
          return fail("want b=<kind>:<t|n>[:<target>]");
        }
        if (!parse_branch_kind(parts[0], out.branch_kind)) {
          return fail("bad branch kind '" + parts[0] + "'");
        }
        if (parts[1] == "t") {
          out.taken = true;
        } else if (parts[1] == "n") {
          out.taken = false;
        } else {
          return fail("bad branch outcome '" + parts[1] + "' (want t or n)");
        }
        if (parts.size() == 3 && !parse_hex(parts[2], out.target)) {
          return fail("bad branch target '" + parts[2] + "'");
        }
        break;
      }
      default:
        return fail("unknown field '" + std::string(token) + "'");
    }
  }
  // Stores carry data in s=, never a destination: a store with a dst can
  // never wake its consumers and would wedge the machine (the synth
  // generator enforces the same invariant in kernel.cpp).
  if (out.is_store() && out.dst.valid()) {
    return fail("destination register on store op");
  }
  return Line::Op;
}

std::string format_text_log_line(const MicroOp& op) {
  std::string line =
      str_format("%llx %.*s", static_cast<unsigned long long>(op.pc),
                 static_cast<int>(op_name(op.cls).size()),
                 op_name(op.cls).data());
  auto reg_text = [](RegId reg) {
    return str_format("%c%d", reg.cls == RegClass::Fp ? 'f' : 'i',
                      static_cast<int>(reg.index));
  };
  if (op.dst.valid()) {
    line += " d=" + reg_text(op.dst);
  }
  if (op.src[0].valid() || op.src[1].valid()) {
    line += " s=";
    bool first = true;
    for (const RegId& reg : op.src) {
      if (!reg.valid()) continue;
      if (!first) line += ",";
      line += reg_text(reg);
      first = false;
    }
  }
  if (op.is_mem()) {
    line += str_format(" m=%llx:%u",
                       static_cast<unsigned long long>(op.mem_addr),
                       static_cast<unsigned>(op.mem_size));
  }
  if (op.is_branch()) {
    line += str_format(" b=%.*s:%c:%llx",
                       static_cast<int>(branch_kind_name(op.branch_kind).size()),
                       branch_kind_name(op.branch_kind).data(),
                       op.taken ? 't' : 'n',
                       static_cast<unsigned long long>(op.target));
  }
  return line;
}

}  // namespace ringclu
