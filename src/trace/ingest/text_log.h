#pragma once

/// \file text_log.h
/// The RITL ("ringclu instruction text log") plain-text frontend: the
/// documented line format by which real-program instruction logs (QEMU
/// exec logs, objdump disassembly — see tools/capture_trace.py) become
/// MicroOp streams.  One instruction per line:
///
///   <pc-hex> <mnemonic> [d=<reg>] [s=<reg>[,<reg>]]
///                       [m=<addr-hex>:<size>] [b=<kind>:<t|n>[:<target-hex>]]
///
///   pc/addr/target  hex, with or without a 0x prefix
///   reg             i0..i31 (integer) or f0..f31 (floating point)
///   kind            cond | jump | call | ret
///   size            memory access bytes, 1..255
///
/// Blank lines and lines starting with '#' are skipped.  The mnemonic is
/// classified through a decoder table covering the simulator's canonical
/// class names (int_alu, load, ...) plus common x86/ARM/RISC-V spellings;
/// branch mnemonics imply a kind and a not-taken default that an explicit
/// b= field overrides.  `ringclu_trace cat` emits exactly this format
/// using canonical mnemonics, so cat -> ingest round-trips losslessly.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "isa/micro_op.h"

namespace ringclu {

/// Decoder-table lookup: op class (and implied branch kind for branch
/// mnemonics) for a mnemonic; nullopt when unknown.
struct MnemonicInfo {
  OpClass cls = OpClass::Nop;
  BranchKind branch_kind = BranchKind::None;
};
[[nodiscard]] std::optional<MnemonicInfo> classify_mnemonic(
    std::string_view mnemonic);

/// Streaming line parser with one-based line numbers for diagnostics.
class TextLogParser {
 public:
  enum class Line { Op, Skip, Error };

  /// Parses one line (no trailing newline required).  Op: \p out is
  /// filled.  Skip: blank/comment.  Error: error() explains, prefixed
  /// with the line number; the parser stays usable for further lines.
  Line parse(std::string_view line, MicroOp& out);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t line_number() const { return line_number_; }

 private:
  std::size_t line_number_ = 0;
  std::string error_;
};

/// Canonical RITL rendering of one op (what `ringclu_trace cat` prints).
[[nodiscard]] std::string format_text_log_line(const MicroOp& op);

}  // namespace ringclu
