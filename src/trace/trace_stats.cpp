#include "trace/trace_stats.h"

#include <array>

#include "util/format.h"

namespace ringclu {

std::string TraceMix::summary() const {
  return str_format(
      "ops=%llu fp=%.1f%% mem=%.1f%% br=%.1f%% taken=%.1f%% depdist=%.1f",
      static_cast<unsigned long long>(total), fp_fraction() * 100.0,
      mem_fraction() * 100.0, branch_fraction() * 100.0,
      by_class[static_cast<std::size_t>(OpClass::Branch)] == 0
          ? 0.0
          : 100.0 * static_cast<double>(branches_taken) /
                static_cast<double>(
                    by_class[static_cast<std::size_t>(OpClass::Branch)]),
      mean_dep_distance());
}

TraceMix profile_trace(TraceSource& source, std::uint64_t sample_ops) {
  TraceMix mix;
  // Last-writer table for dependence distances.
  std::array<std::uint64_t, kNumFlatArchRegs> last_writer{};
  last_writer.fill(0);

  MicroOp op;
  for (std::uint64_t n = 1; n <= sample_ops && source.next(op); ++n) {
    ++mix.total;
    ++mix.by_class[static_cast<std::size_t>(op.cls)];
    if (op.is_branch() && op.taken) ++mix.branches_taken;
    for (const RegId& src : op.src) {
      if (!src.valid()) continue;
      ++mix.src_operand_count;
      const std::uint64_t writer =
          last_writer[static_cast<std::size_t>(src.flat())];
      if (writer != 0) {
        mix.dep_distance_sum += n - writer;
        ++mix.dep_distance_samples;
      }
    }
    if (op.dst.valid()) {
      last_writer[static_cast<std::size_t>(op.dst.flat())] = n;
    }
  }
  return mix;
}

}  // namespace ringclu
