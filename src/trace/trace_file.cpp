#include "trace/trace_file.h"

#include "util/assert.h"

namespace ringclu {
namespace {

/// Zig-zag encoding so small negative PC deltas stay short.
constexpr std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

// Flags byte layout.
constexpr std::uint8_t kHasDst = 1u << 0;
constexpr std::uint8_t kHasSrc0 = 1u << 1;
constexpr std::uint8_t kHasSrc1 = 1u << 2;
constexpr std::uint8_t kTaken = 1u << 3;

std::uint8_t encode_reg(RegId reg) {
  return static_cast<std::uint8_t>(reg.flat());
}

RegId decode_reg(std::uint8_t flat) {
  const RegClass cls =
      flat >= kArchRegsPerClass ? RegClass::Fp : RegClass::Int;
  return RegId::make(cls, flat % kArchRegsPerClass);
}

}  // namespace

TraceFileWriter::TraceFileWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  RINGCLU_EXPECTS(file_ != nullptr);
  const std::uint32_t magic = kTraceMagic;
  const std::uint16_t version = kTraceVersion;
  const std::uint16_t pad = 0;
  const std::uint64_t count = 0;  // patched in close()
  std::fwrite(&magic, sizeof magic, 1, file_);
  std::fwrite(&version, sizeof version, 1, file_);
  std::fwrite(&pad, sizeof pad, 1, file_);
  std::fwrite(&count, sizeof count, 1, file_);
}

TraceFileWriter::~TraceFileWriter() { close(); }

void TraceFileWriter::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    const std::uint8_t byte = static_cast<std::uint8_t>(value) | 0x80;
    std::fputc(byte, file_);
    value >>= 7;
  }
  std::fputc(static_cast<std::uint8_t>(value), file_);
}

void TraceFileWriter::append(const MicroOp& op) {
  RINGCLU_EXPECTS(file_ != nullptr);
  std::uint8_t flags = 0;
  if (op.dst.valid()) flags |= kHasDst;
  if (op.src[0].valid()) flags |= kHasSrc0;
  if (op.src[1].valid()) flags |= kHasSrc1;
  if (op.taken) flags |= kTaken;
  std::fputc(flags, file_);
  std::fputc(static_cast<std::uint8_t>(op.cls), file_);
  std::fputc(static_cast<std::uint8_t>(op.branch_kind), file_);
  put_varint(zigzag(static_cast<std::int64_t>(op.pc - last_pc_)));
  last_pc_ = op.pc;
  if (op.dst.valid()) std::fputc(encode_reg(op.dst), file_);
  if (op.src[0].valid()) std::fputc(encode_reg(op.src[0]), file_);
  if (op.src[1].valid()) std::fputc(encode_reg(op.src[1]), file_);
  if (op.is_mem()) {
    put_varint(zigzag(static_cast<std::int64_t>(op.mem_addr - last_addr_)));
    std::fputc(op.mem_size, file_);
    last_addr_ = op.mem_addr;
  }
  if (op.is_branch()) {
    put_varint(op.target);
  }
  ++count_;
}

void TraceFileWriter::close() {
  if (file_ == nullptr) return;
  std::fseek(file_, 8, SEEK_SET);
  std::fwrite(&count_, sizeof count_, 1, file_);
  std::fclose(file_);
  file_ = nullptr;
}

TraceFileReader::TraceFileReader(const std::string& path) : path_(path) {
  const std::size_t slash = path.find_last_of('/');
  name_ = slash == std::string::npos ? path : path.substr(slash + 1);
  file_ = std::fopen(path.c_str(), "rb");
  RINGCLU_EXPECTS(file_ != nullptr);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t pad = 0;
  // Reads hoisted out of the checks: contract conditions must stay free of
  // side effects (they are unevaluated with RINGCLU_CONTRACTS=OFF).
  const std::size_t magic_read = std::fread(&magic, sizeof magic, 1, file_);
  RINGCLU_EXPECTS(magic_read == 1);
  RINGCLU_EXPECTS(magic == kTraceMagic);
  const std::size_t version_read =
      std::fread(&version, sizeof version, 1, file_);
  RINGCLU_EXPECTS(version_read == 1);
  RINGCLU_EXPECTS(version == kTraceVersion);
  const std::size_t pad_read = std::fread(&pad, sizeof pad, 1, file_);
  RINGCLU_EXPECTS(pad_read == 1);
  const std::size_t total_read = std::fread(&total_, sizeof total_, 1, file_);
  RINGCLU_EXPECTS(total_read == 1);
}

TraceFileReader::~TraceFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::uint64_t TraceFileReader::get_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const int byte = std::fgetc(file_);
    RINGCLU_EXPECTS(byte != EOF);
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    RINGCLU_EXPECTS(shift < 64);
  }
  return value;
}

bool TraceFileReader::produce(MicroOp& out) {
  if (consumed_ >= total_) return false;
  out = MicroOp{};
  const int flags = std::fgetc(file_);
  RINGCLU_EXPECTS(flags != EOF);
  const int cls = std::fgetc(file_);
  const int branch_kind = std::fgetc(file_);
  RINGCLU_EXPECTS(cls != EOF && branch_kind != EOF);
  out.cls = static_cast<OpClass>(cls);
  out.branch_kind = static_cast<BranchKind>(branch_kind);
  out.taken = (flags & kTaken) != 0;
  last_pc_ += static_cast<std::uint64_t>(
      unzigzag(get_varint()));
  out.pc = last_pc_;
  if (flags & kHasDst) {
    out.dst = decode_reg(static_cast<std::uint8_t>(std::fgetc(file_)));
  }
  if (flags & kHasSrc0) {
    out.src[0] = decode_reg(static_cast<std::uint8_t>(std::fgetc(file_)));
  }
  if (flags & kHasSrc1) {
    out.src[1] = decode_reg(static_cast<std::uint8_t>(std::fgetc(file_)));
  }
  if (out.is_mem()) {
    last_addr_ += static_cast<std::uint64_t>(unzigzag(get_varint()));
    out.mem_addr = last_addr_;
    out.mem_size = static_cast<std::uint8_t>(std::fgetc(file_));
  }
  if (out.is_branch()) {
    out.target = get_varint();
  }
  ++consumed_;
  return true;
}

void TraceFileReader::do_reset() {
  std::fseek(file_, 16, SEEK_SET);
  consumed_ = 0;
  last_pc_ = 0;
  last_addr_ = 0;
}

}  // namespace ringclu
