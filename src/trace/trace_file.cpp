#include "trace/trace_file.h"

#include <cerrno>
#include <cstring>

#include "core/checkpoint.h"
#include "isa/reg.h"
#include "util/assert.h"
#include "util/format.h"

namespace ringclu {
namespace {

/// Zig-zag encoding so small negative PC deltas stay short.
constexpr std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

// Flags byte layout.
constexpr std::uint8_t kHasDst = 1u << 0;
constexpr std::uint8_t kHasSrc0 = 1u << 1;
constexpr std::uint8_t kHasSrc1 = 1u << 2;
constexpr std::uint8_t kTaken = 1u << 3;

std::uint8_t encode_reg(RegId reg) {
  return static_cast<std::uint8_t>(reg.flat());
}

[[nodiscard]] bool decode_reg(std::uint8_t flat, RegId& out) {
  if (flat >= kNumFlatArchRegs) return false;
  const RegClass cls =
      flat >= kArchRegsPerClass ? RegClass::Fp : RegClass::Int;
  out = RegId::make(cls, flat % kArchRegsPerClass);
  return true;
}

}  // namespace

TraceFileWriter::TraceFileWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  RINGCLU_EXPECTS(file_ != nullptr);
  const std::uint32_t magic = kTraceMagic;
  const std::uint16_t version = kTraceVersion;
  const std::uint16_t pad = 0;
  const std::uint64_t count = 0;  // patched in close()
  std::fwrite(&magic, sizeof magic, 1, file_);
  std::fwrite(&version, sizeof version, 1, file_);
  std::fwrite(&pad, sizeof pad, 1, file_);
  std::fwrite(&count, sizeof count, 1, file_);
}

TraceFileWriter::~TraceFileWriter() { close(); }

void TraceFileWriter::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    const std::uint8_t byte = static_cast<std::uint8_t>(value) | 0x80;
    std::fputc(byte, file_);
    value >>= 7;
  }
  std::fputc(static_cast<std::uint8_t>(value), file_);
}

void TraceFileWriter::append(const MicroOp& op) {
  RINGCLU_EXPECTS(file_ != nullptr);
  std::uint8_t flags = 0;
  if (op.dst.valid()) flags |= kHasDst;
  if (op.src[0].valid()) flags |= kHasSrc0;
  if (op.src[1].valid()) flags |= kHasSrc1;
  if (op.taken) flags |= kTaken;
  std::fputc(flags, file_);
  std::fputc(static_cast<std::uint8_t>(op.cls), file_);
  std::fputc(static_cast<std::uint8_t>(op.branch_kind), file_);
  put_varint(zigzag(static_cast<std::int64_t>(op.pc - last_pc_)));
  last_pc_ = op.pc;
  if (op.dst.valid()) std::fputc(encode_reg(op.dst), file_);
  if (op.src[0].valid()) std::fputc(encode_reg(op.src[0]), file_);
  if (op.src[1].valid()) std::fputc(encode_reg(op.src[1]), file_);
  if (op.is_mem()) {
    put_varint(zigzag(static_cast<std::int64_t>(op.mem_addr - last_addr_)));
    std::fputc(op.mem_size, file_);
    last_addr_ = op.mem_addr;
  }
  if (op.is_branch()) {
    put_varint(op.target);
  }
  ++count_;
}

void TraceFileWriter::close() {
  if (file_ == nullptr) return;
  std::fseek(file_, 8, SEEK_SET);
  std::fwrite(&count_, sizeof count_, 1, file_);
  std::fclose(file_);
  file_ = nullptr;
}

TraceFileReader::TraceFileReader(const std::string& path) : path_(path) {
  const std::size_t slash = path.find_last_of('/');
  name_ = slash == std::string::npos ? path : path.substr(slash + 1);
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    fail(str_format("cannot open '%s': %s", path.c_str(),
                    std::strerror(errno)));
    return;
  }
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t pad = 0;
  if (std::fread(&magic, sizeof magic, 1, file_) != 1 ||
      std::fread(&version, sizeof version, 1, file_) != 1 ||
      std::fread(&pad, sizeof pad, 1, file_) != 1 ||
      std::fread(&total_, sizeof total_, 1, file_) != 1) {
    fail(str_format("'%s': truncated header", path.c_str()));
    return;
  }
  if (magic != kTraceMagic) {
    fail(str_format("'%s': bad magic (not an RCLT trace)", path.c_str()));
    return;
  }
  if (version != kTraceVersion) {
    fail(str_format("'%s': unsupported trace version %u", path.c_str(),
                    static_cast<unsigned>(version)));
  }
}

TraceFileReader::~TraceFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceFileReader::fail(const std::string& message) {
  if (ok_) {
    ok_ = false;
    error_ = message;
    total_ = 0;  // produce() never touches the stream again
  }
}

bool TraceFileReader::get_byte(std::uint8_t& value) {
  const int byte = std::fgetc(file_);
  if (byte == EOF) {
    fail(str_format("'%s': truncated record", path_.c_str()));
    return false;
  }
  value = static_cast<std::uint8_t>(byte);
  return true;
}

bool TraceFileReader::get_varint(std::uint64_t& value) {
  value = 0;
  int shift = 0;
  for (;;) {
    std::uint8_t byte = 0;
    if (!get_byte(byte)) return false;
    if (shift == 63 && (byte & 0x7e) != 0) {
      fail(str_format("'%s': oversized varint", path_.c_str()));
      return false;
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
    if (shift >= 64) {
      fail(str_format("'%s': oversized varint", path_.c_str()));
      return false;
    }
  }
}

bool TraceFileReader::produce(MicroOp& out) {
  if (!ok_ || consumed_ >= total_) return false;
  out = MicroOp{};
  std::uint8_t flags = 0;
  std::uint8_t cls = 0;
  std::uint8_t branch_kind = 0;
  if (!get_byte(flags) || !get_byte(cls) || !get_byte(branch_kind)) {
    return false;
  }
  if (cls >= kNumOpClasses) {
    fail(str_format("'%s': bad op class", path_.c_str()));
    return false;
  }
  if (branch_kind > static_cast<std::uint8_t>(BranchKind::Return)) {
    fail(str_format("'%s': bad branch kind", path_.c_str()));
    return false;
  }
  out.cls = static_cast<OpClass>(cls);
  out.branch_kind = static_cast<BranchKind>(branch_kind);
  out.taken = (flags & kTaken) != 0;
  std::uint64_t pc_delta = 0;
  if (!get_varint(pc_delta)) return false;
  last_pc_ += static_cast<std::uint64_t>(unzigzag(pc_delta));
  out.pc = last_pc_;
  std::uint8_t reg = 0;
  if (flags & kHasDst) {
    if (!get_byte(reg)) return false;
    if (!decode_reg(reg, out.dst)) {
      fail(str_format("'%s': bad register byte", path_.c_str()));
      return false;
    }
  }
  if (flags & kHasSrc0) {
    if (!get_byte(reg)) return false;
    if (!decode_reg(reg, out.src[0])) {
      fail(str_format("'%s': bad register byte", path_.c_str()));
      return false;
    }
  }
  if (flags & kHasSrc1) {
    if (!get_byte(reg)) return false;
    if (!decode_reg(reg, out.src[1])) {
      fail(str_format("'%s': bad register byte", path_.c_str()));
      return false;
    }
  }
  if (out.is_mem()) {
    std::uint64_t addr_delta = 0;
    if (!get_varint(addr_delta)) return false;
    last_addr_ += static_cast<std::uint64_t>(unzigzag(addr_delta));
    out.mem_addr = last_addr_;
    if (!get_byte(out.mem_size)) return false;
  }
  if (out.is_branch()) {
    if (!get_varint(out.target)) return false;
  }
  ++consumed_;
  return true;
}

void TraceFileReader::do_reset() {
  if (file_ == nullptr) return;
  std::fseek(file_, 16, SEEK_SET);
  consumed_ = 0;
  last_pc_ = 0;
  last_addr_ = 0;
}

void TraceFileReader::save_pos(CheckpointWriter& out) const {
  out.u64(position());
  const long offset = file_ == nullptr ? 0 : std::ftell(file_);
  out.u64(offset < 0 ? 0 : static_cast<std::uint64_t>(offset));
  out.u64(last_pc_);
  out.u64(last_addr_);
}

void TraceFileReader::restore_pos(CheckpointReader& in) {
  const std::uint64_t target = in.u64();
  const std::uint64_t offset = in.u64();
  const std::uint64_t pc = in.u64();
  const std::uint64_t addr = in.u64();
  if (!in.ok()) return;
  if (!ok_ || file_ == nullptr) {
    in.fail("trace file is in an error state");
    return;
  }
  if (target > total_ || offset < 16) {
    in.fail("checkpointed trace position out of range");
    return;
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    in.fail("cannot seek trace file to checkpointed offset");
    return;
  }
  consumed_ = target;
  last_pc_ = pc;
  last_addr_ = addr;
  set_position(target);
}

}  // namespace ringclu
