#pragma once

/// \file kernels.h
/// Library of dependence-structured kernels the synthetic SPEC2000-like
/// programs are assembled from.  Each factory returns a validated Kernel;
/// parameters control working-set size (cache behaviour) and branch
/// predictability.  See DESIGN.md for the substitution rationale.

#include <cstdint>
#include <string_view>
#include <vector>

#include "trace/synth/kernel.h"

namespace ringclu::kernels {

// ---- Floating-point kernels -------------------------------------------

/// Streaming a*x+y: two loads, multiply, add, store.  High ILP, the
/// backbone of swim/mgrid-like codes.
[[nodiscard]] Kernel daxpy(std::uint64_t working_set);

/// Dot-product with a loop-carried FP accumulator (serial FP chain).
[[nodiscard]] Kernel dot_reduce(std::uint64_t working_set);

/// 3-point stencil: each loaded value is consumed by three iterations
/// (many-consumer values; communication-heavy when clustered).
[[nodiscard]] Kernel stencil3(std::uint64_t working_set);

/// Serial FP polynomial recurrence (lucas-like), no memory traffic.
[[nodiscard]] Kernel fp_poly();

/// FP work with a divide every iteration (apsi/art flavor).
[[nodiscard]] Kernel fp_div_mix(std::uint64_t working_set);

/// FFT-style butterfly: four loads, wide independent add/mult pairs.
[[nodiscard]] Kernel butterfly(std::uint64_t working_set);

/// Indexed gather + FP update + scatter (ammp/equake flavor).
[[nodiscard]] Kernel particle_gather(std::uint64_t working_set);

/// Mixed INT/FP loop with predictable control (mesa/sixtrack flavor).
[[nodiscard]] Kernel fp_mixed(std::uint64_t working_set);

// ---- Integer kernels ---------------------------------------------------

/// Serial dependent ALU chain with a data-dependent hammock
/// (compression inner loops).
[[nodiscard]] Kernel int_chain(double branch_taken_prob);

/// Independent parallel integer chains (high-ILP integer code).
[[nodiscard]] Kernel int_wide();

/// Pointer chase: self-dependent load feeding a data access (mcf).
[[nodiscard]] Kernel ptr_chase(std::uint64_t working_set);

/// Hash + random table probe with a data-dependent hammock (gap/parser).
[[nodiscard]] Kernel hash_lookup(std::uint64_t working_set,
                                 double branch_taken_prob);

/// Several short blocks separated by branches of mixed predictability,
/// with a table load (gcc/crafty control-heavy flavor).
[[nodiscard]] Kernel branchy_blocks(std::uint64_t working_set);

/// Load-modify-store streaming copy.
[[nodiscard]] Kernel copy_loop(std::uint64_t working_set);

/// Shift/mask chains with multiplies and periodic control (crafty
/// bitboards).
[[nodiscard]] Kernel bitboard();

/// Table-driven finite-state machine: state feeds the next probe
/// (twolf/vpr flavor).
[[nodiscard]] Kernel lut_fsm(std::uint64_t working_set,
                             double branch_taken_prob);

/// Sequential scan with a rarely-taken match branch (perlbmk/vortex).
[[nodiscard]] Kernel string_scan(std::uint64_t working_set);

/// Names of all kernels (for tests and tooling) and lookup by name with
/// default parameters.
[[nodiscard]] std::vector<std::string_view> all_kernel_names();
[[nodiscard]] Kernel make_by_name(std::string_view name);

}  // namespace ringclu::kernels
