#pragma once

/// \file suite.h
/// The synthetic stand-in for the SPEC2000 suite: 26 program profiles (12
/// integer, 14 floating point) with the names and qualitative behaviour of
/// the originals (ILP, branchiness, working sets, code footprint).  See
/// DESIGN.md §1 for the substitution rationale.

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "trace/synth/program.h"
#include "trace/trace_source.h"

namespace ringclu {

struct BenchmarkDesc {
  std::string_view name;
  bool is_fp;
};

/// All 26 benchmarks in the paper's Figure 11 order (alphabetical).
[[nodiscard]] std::span<const BenchmarkDesc> spec2000_benchmarks();

/// True when \p name names an FP benchmark.  \pre name is in the suite.
[[nodiscard]] bool is_fp_benchmark(std::string_view name);

/// True when \p name is one of the 26 suite benchmarks.
[[nodiscard]] bool is_benchmark_name(std::string_view name);

/// All suite names joined with ", " — for "valid names are ..." errors.
[[nodiscard]] std::string known_benchmark_names();

/// Builds the profile for one benchmark.  \pre name is in the suite.
[[nodiscard]] ProgramSpec make_program_spec(std::string_view name);

/// Convenience: profile + deterministic seed -> trace source.
[[nodiscard]] std::unique_ptr<TraceSource> make_benchmark_trace(
    std::string_view name, std::uint64_t seed);

}  // namespace ringclu
