#include "trace/synth/suite.h"

#include <array>

#include "trace/synth/kernels.h"
#include "util/assert.h"

namespace ringclu {
namespace {

namespace k = kernels;

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

constexpr std::array<BenchmarkDesc, 26> kSuite{{
    {"ammp", true},     {"applu", true},   {"apsi", true},
    {"art", true},      {"bzip2", false},  {"crafty", false},
    {"eon", false},     {"equake", true},  {"facerec", true},
    {"fma3d", true},    {"galgel", true},  {"gap", false},
    {"gcc", false},     {"gzip", false},   {"lucas", true},
    {"mcf", false},     {"mesa", true},    {"mgrid", true},
    {"parser", false},  {"perlbmk", false}, {"sixtrack", true},
    {"swim", true},     {"twolf", false},  {"vortex", false},
    {"vpr", false},     {"wupwise", true},
}};

SegmentSpec seg(Kernel kernel, double weight, int min_iters, int max_iters) {
  SegmentSpec segment;
  segment.kernel = std::move(kernel);
  segment.weight = weight;
  segment.min_iters = min_iters;
  segment.max_iters = max_iters;
  return segment;
}

}  // namespace

std::span<const BenchmarkDesc> spec2000_benchmarks() { return kSuite; }

bool is_fp_benchmark(std::string_view name) {
  for (const BenchmarkDesc& desc : kSuite) {
    if (desc.name == name) return desc.is_fp;
  }
  RINGCLU_UNREACHABLE("unknown benchmark name");
}

bool is_benchmark_name(std::string_view name) {
  for (const BenchmarkDesc& desc : kSuite) {
    if (desc.name == name) return true;
  }
  return false;
}

std::string known_benchmark_names() {
  std::string joined;
  for (const BenchmarkDesc& desc : kSuite) {
    if (!joined.empty()) joined += ", ";
    joined += desc.name;
  }
  return joined;
}

ProgramSpec make_program_spec(std::string_view name) {
  ProgramSpec p;
  p.name = std::string(name);
  p.is_fp = is_fp_benchmark(name);

  // ---- Floating point ---------------------------------------------------
  if (name == "ammp") {
    p.segments = {seg(k::particle_gather(4 * MiB), 3, 48, 160),
                  seg(k::fp_poly(), 1, 64, 192),
                  seg(k::dot_reduce(1 * MiB), 1, 64, 192)};
  } else if (name == "applu") {
    p.segments = {seg(k::stencil3(2 * MiB), 3, 96, 256),
                  seg(k::daxpy(2 * MiB), 2, 96, 256),
                  seg(k::dot_reduce(512 * KiB), 1, 64, 160)};
  } else if (name == "apsi") {
    p.segments = {seg(k::fp_div_mix(1 * MiB), 1, 32, 96),
                  seg(k::stencil3(1 * MiB), 2, 64, 192),
                  seg(k::fp_mixed(512 * KiB), 1, 64, 160)};
  } else if (name == "art") {
    p.segments = {seg(k::particle_gather(8 * MiB), 2, 48, 128),
                  seg(k::dot_reduce(4 * MiB), 2, 96, 256)};
  } else if (name == "equake") {
    p.segments = {seg(k::particle_gather(4 * MiB), 2, 48, 128),
                  seg(k::daxpy(1 * MiB), 1, 96, 224),
                  seg(k::dot_reduce(1 * MiB), 1, 64, 160)};
  } else if (name == "facerec") {
    p.segments = {seg(k::butterfly(1 * MiB), 2, 64, 192),
                  seg(k::daxpy(512 * KiB), 2, 96, 224),
                  seg(k::fp_mixed(256 * KiB), 1, 64, 160)};
  } else if (name == "fma3d") {
    p.segments = {seg(k::butterfly(2 * MiB), 2, 48, 160),
                  seg(k::stencil3(1 * MiB), 2, 64, 192),
                  seg(k::fp_mixed(1 * MiB), 1, 48, 128)};
    p.use_calls = true;
    p.code_spread = 1024;
  } else if (name == "galgel") {
    p.segments = {seg(k::butterfly(512 * KiB), 2, 64, 192),
                  seg(k::daxpy(256 * KiB), 2, 96, 256),
                  seg(k::dot_reduce(256 * KiB), 1, 64, 192)};
  } else if (name == "lucas") {
    p.segments = {seg(k::fp_poly(), 3, 96, 256),
                  seg(k::dot_reduce(512 * KiB), 1, 64, 160),
                  seg(k::daxpy(1 * MiB), 1, 96, 224)};
  } else if (name == "mesa") {
    p.segments = {seg(k::fp_mixed(512 * KiB), 3, 48, 144),
                  seg(k::int_wide(), 1, 32, 96),
                  seg(k::daxpy(256 * KiB), 1, 64, 160)};
    p.use_calls = true;
  } else if (name == "mgrid") {
    p.segments = {seg(k::stencil3(4 * MiB), 4, 128, 320),
                  seg(k::daxpy(2 * MiB), 1, 96, 256)};
  } else if (name == "sixtrack") {
    p.segments = {seg(k::fp_mixed(1 * MiB), 2, 64, 160),
                  seg(k::fp_poly(), 1, 64, 192),
                  seg(k::butterfly(512 * KiB), 1, 48, 144)};
  } else if (name == "swim") {
    p.segments = {seg(k::daxpy(4 * MiB), 3, 128, 320),
                  seg(k::stencil3(2 * MiB), 2, 96, 256)};
  } else if (name == "wupwise") {
    p.segments = {seg(k::daxpy(1 * MiB), 2, 96, 256),
                  seg(k::butterfly(1 * MiB), 2, 64, 192),
                  seg(k::dot_reduce(512 * KiB), 1, 64, 160)};
  }

  // ---- Integer ----------------------------------------------------------
  else if (name == "bzip2") {
    p.segments = {seg(k::copy_loop(256 * KiB), 2, 32, 96),
                  seg(k::int_chain(0.18), 3, 24, 80),
                  seg(k::hash_lookup(1 * MiB, 0.18), 1, 16, 64)};
  } else if (name == "crafty") {
    p.segments = {seg(k::bitboard(), 3, 16, 56),
                  seg(k::branchy_blocks(512 * KiB), 2, 12, 48),
                  seg(k::int_wide(), 1, 16, 48)};
    p.use_calls = true;
    p.code_spread = 512;
  } else if (name == "eon") {
    p.segments = {seg(k::int_wide(), 2, 24, 72),
                  seg(k::fp_mixed(256 * KiB), 1, 32, 96),
                  seg(k::branchy_blocks(128 * KiB), 1, 12, 40)};
    p.use_calls = true;
  } else if (name == "gap") {
    p.segments = {seg(k::hash_lookup(2 * MiB, 0.20), 2, 16, 56),
                  seg(k::int_chain(0.15), 1, 24, 72),
                  seg(k::copy_loop(512 * KiB), 1, 32, 96)};
  } else if (name == "gcc") {
    // Large code footprint: many distinct regions, sparse layout.
    p.segments = {seg(k::branchy_blocks(1 * MiB), 2, 8, 32),
                  seg(k::branchy_blocks(512 * KiB), 2, 8, 32),
                  seg(k::string_scan(512 * KiB), 1, 16, 48),
                  seg(k::int_chain(0.25), 2, 12, 40),
                  seg(k::copy_loop(256 * KiB), 1, 16, 56),
                  seg(k::lut_fsm(512 * KiB, 0.22), 1, 12, 40)};
    p.use_calls = true;
    p.code_spread = 4096;
  } else if (name == "gzip") {
    p.segments = {seg(k::int_chain(0.16), 3, 32, 96),
                  seg(k::copy_loop(512 * KiB), 2, 32, 96),
                  seg(k::string_scan(256 * KiB), 1, 24, 72)};
  } else if (name == "mcf") {
    p.segments = {seg(k::ptr_chase(8 * MiB), 3, 32, 96),
                  seg(k::int_chain(0.20), 1, 16, 56)};
  } else if (name == "parser") {
    p.segments = {seg(k::hash_lookup(1 * MiB, 0.18), 2, 12, 40),
                  seg(k::string_scan(512 * KiB), 2, 24, 72),
                  seg(k::branchy_blocks(512 * KiB), 1, 8, 32)};
    p.use_calls = true;
  } else if (name == "perlbmk") {
    p.segments = {seg(k::string_scan(256 * KiB), 2, 24, 72),
                  seg(k::lut_fsm(512 * KiB, 0.22), 2, 12, 48),
                  seg(k::branchy_blocks(256 * KiB), 1, 8, 32)};
    p.use_calls = true;
    p.code_spread = 2048;
  } else if (name == "twolf") {
    p.segments = {seg(k::lut_fsm(1 * MiB, 0.25), 2, 12, 48),
                  seg(k::hash_lookup(512 * KiB, 0.22), 1, 12, 40),
                  seg(k::int_chain(0.18), 1, 24, 64)};
  } else if (name == "vortex") {
    p.segments = {seg(k::string_scan(512 * KiB), 1, 24, 72),
                  seg(k::copy_loop(1 * MiB), 2, 32, 96),
                  seg(k::hash_lookup(2 * MiB, 0.15), 1, 12, 48)};
    p.use_calls = true;
  } else if (name == "vpr") {
    p.segments = {seg(k::lut_fsm(512 * KiB, 0.22), 2, 12, 48),
                  seg(k::branchy_blocks(256 * KiB), 1, 8, 32),
                  seg(k::int_wide(), 1, 16, 56)};
  } else {
    RINGCLU_UNREACHABLE("unknown benchmark name");
  }

  return p;
}

std::unique_ptr<TraceSource> make_benchmark_trace(std::string_view name,
                                                  std::uint64_t seed) {
  return std::make_unique<SyntheticProgram>(make_program_spec(name), seed);
}

}  // namespace ringclu
