#include "trace/synth/kernel.h"

#include <algorithm>

namespace ringclu {
namespace {

/// Largest lag with which \p vid is referenced anywhere in \p body.
int max_lag(const std::vector<KernelOp>& body, int vid) {
  int lag = 0;
  for (const KernelOp& op : body) {
    for (const SymOperand* operand : {&op.src0, &op.src1}) {
      if (operand->kind == SymOperand::Kind::Value && operand->index == vid) {
        lag = std::max(lag, static_cast<int>(operand->lag));
      }
    }
  }
  return lag;
}

}  // namespace

int Kernel::register_demand(RegClass cls) const {
  int demand = cls == RegClass::Int ? int_invariants : fp_invariants;
  for (const KernelOp& op : body) {
    if (op.dst_vid < 0 || op.dst_cls != cls) continue;
    demand += max_lag(body, op.dst_vid) + 1;
  }
  return demand;
}

const Kernel& Kernel::validate() const {
  RINGCLU_EXPECTS(!body.empty());
  std::vector<bool> defined;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const KernelOp& op = body[i];
    if (op.dst_vid >= 0) {
      if (defined.size() <= static_cast<std::size_t>(op.dst_vid)) {
        defined.resize(static_cast<std::size_t>(op.dst_vid) + 1, false);
      }
    }
    for (const SymOperand* operand : {&op.src0, &op.src1}) {
      switch (operand->kind) {
        case SymOperand::Kind::None:
          break;
        case SymOperand::Kind::Invariant: {
          const int limit = operand->invariant_class() == RegClass::Int
                                ? int_invariants
                                : fp_invariants;
          RINGCLU_EXPECTS(operand->invariant_slot() < limit);
          break;
        }
        case SymOperand::Kind::Value: {
          RINGCLU_EXPECTS(operand->lag >= 0);
          // Lag-0 references must point at an op earlier in the body.
          if (operand->lag == 0) {
            bool found = false;
            for (std::size_t j = 0; j < i; ++j) {
              if (body[j].dst_vid == operand->index) found = true;
            }
            RINGCLU_EXPECTS(found && "lag-0 reference to a later value");
          }
          break;
        }
      }
    }
    if (op.dst_vid >= 0) defined[static_cast<std::size_t>(op.dst_vid)] = true;
    RINGCLU_EXPECTS(op.cls != OpClass::Branch || op.dst_vid < 0);
    RINGCLU_EXPECTS(op.cls != OpClass::Store || op.dst_vid < 0);
  }
  RINGCLU_EXPECTS(register_demand(RegClass::Int) <= kArchRegsPerClass);
  RINGCLU_EXPECTS(register_demand(RegClass::Fp) <= kArchRegsPerClass);
  return *this;
}

SymOperand KernelBuilder::define(KernelOp op, RegClass dst_cls) {
  op.dst_cls = dst_cls;
  op.dst_vid = static_cast<std::int16_t>(next_vid_++);
  kernel_.body.push_back(op);
  return SymOperand::value(op.dst_vid);
}

SymOperand KernelBuilder::op(OpClass cls, SymOperand a, SymOperand b) {
  RINGCLU_EXPECTS(!op_is_mem(cls) && !op_is_branch(cls));
  KernelOp templ;
  templ.cls = cls;
  templ.src0 = a;
  templ.src1 = b;
  return define(templ, op_unit(cls) == UnitKind::Fp ? RegClass::Fp
                                                    : RegClass::Int);
}

SymOperand KernelBuilder::load(RegClass dst_cls, const MemStreamSpec& mem,
                               SymOperand addr) {
  KernelOp templ;
  templ.cls = OpClass::Load;
  templ.src0 = addr;
  templ.mem = mem;
  return define(templ, dst_cls);
}

void KernelBuilder::store(const MemStreamSpec& mem, SymOperand addr,
                          SymOperand data) {
  KernelOp templ;
  templ.cls = OpClass::Store;
  templ.src0 = addr;
  templ.src1 = data;
  templ.mem = mem;
  kernel_.body.push_back(templ);
}

void KernelBuilder::branch(const BranchSpec& spec, SymOperand a,
                           SymOperand b) {
  KernelOp templ;
  templ.cls = OpClass::Branch;
  templ.src0 = a;
  templ.src1 = b;
  templ.branch = spec;
  kernel_.body.push_back(templ);
}

}  // namespace ringclu
