#include "trace/synth/program.h"

#include <algorithm>

#include "util/assert.h"

namespace ringclu {
namespace {

constexpr std::uint64_t kCodeOrigin = 0x0040'0000;
constexpr std::uint64_t kDataOrigin = 0x1000'0000;
constexpr std::uint64_t kDataRegion = 0x0100'0000;  // 16 MiB per stream
constexpr std::uint64_t kPageBytes = 4096;

/// Deterministic address scramble for pointer-chase streams.
constexpr std::uint64_t scramble(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

KernelInstance::KernelInstance(const Kernel& kernel, std::uint64_t code_base,
                               std::uint64_t data_base)
    : kernel_(kernel), code_base_(code_base) {
  // Rotation-window register assignment, per class: invariant registers
  // first, then one window per defined value.
  int next_reg[kNumRegClasses] = {kernel.int_invariants,
                                  kernel.fp_invariants};
  int max_vid = -1;
  for (const KernelOp& op : kernel.body) {
    max_vid = std::max(max_vid, static_cast<int>(op.dst_vid));
  }
  value_regs_.resize(static_cast<std::size_t>(max_vid + 1));

  for (const KernelOp& op : kernel.body) {
    if (op.dst_vid < 0) continue;
    int lag = 0;
    for (const KernelOp& reader : kernel.body) {
      for (const SymOperand* operand : {&reader.src0, &reader.src1}) {
        if (operand->kind == SymOperand::Kind::Value &&
            operand->index == op.dst_vid) {
          lag = std::max(lag, static_cast<int>(operand->lag));
        }
      }
    }
    ValueRegs& regs = value_regs_[static_cast<std::size_t>(op.dst_vid)];
    regs.cls = op.dst_cls;
    regs.window = static_cast<std::uint8_t>(lag + 1);
    int& cursor = next_reg[static_cast<std::size_t>(op.dst_cls)];
    regs.base = static_cast<std::uint8_t>(cursor);
    cursor += regs.window;
    RINGCLU_ASSERT(cursor <= kArchRegsPerClass);
  }

  // One address-stream state per body op (memory ops use theirs).
  mem_state_.resize(kernel.body.size());
  std::uint64_t stream_base = data_base;
  for (std::size_t i = 0; i < kernel.body.size(); ++i) {
    if (!op_is_mem(kernel.body[i].cls)) continue;
    mem_state_[i].base = stream_base;
    mem_state_[i].chase_cursor = stream_base;
    stream_base += kDataRegion;
  }
}

RegId KernelInstance::resolve(const SymOperand& operand) const {
  switch (operand.kind) {
    case SymOperand::Kind::None:
      return RegId::invalid();
    case SymOperand::Kind::Invariant:
      return RegId::make(operand.invariant_class(), operand.invariant_slot());
    case SymOperand::Kind::Value: {
      const ValueRegs& regs =
          value_regs_[static_cast<std::size_t>(operand.index)];
      // Register that held (or will hold) the value defined `lag`
      // iterations back.  Early iterations read pre-loop register contents,
      // which is correct dataflow for a loop-carried dependence.
      const std::uint64_t producer_iter =
          iteration_ >= static_cast<std::uint64_t>(operand.lag)
              ? iteration_ - static_cast<std::uint64_t>(operand.lag)
              : 0;
      const int offset = static_cast<int>(producer_iter % regs.window);
      return RegId::make(regs.cls, regs.base + offset);
    }
  }
  return RegId::invalid();
}

std::uint64_t KernelInstance::next_address(std::size_t op_index,
                                           const MemStreamSpec& mem,
                                           Rng& rng) {
  MemState& state = mem_state_[op_index];
  const std::uint64_t align = mem.access_size;
  switch (mem.pattern) {
    case MemPattern::SeqStride: {
      const std::uint64_t addr = state.base + state.seq_index * mem.stride;
      ++state.seq_index;
      // Wrap within the working set to keep streams bounded.
      if (state.seq_index * mem.stride >= mem.working_set) {
        state.seq_index = 0;
      }
      return addr;
    }
    case MemPattern::Random: {
      const std::uint64_t slots = std::max<std::uint64_t>(
          1, mem.working_set / align);
      return state.base + rng.uniform(slots) * align;
    }
    case MemPattern::Chase: {
      // Deterministic chain: each address is a scramble of the previous,
      // confined to the working set.  The *data* dependence comes from the
      // kernel's lag-1 self-reference; this supplies matching addresses.
      const std::uint64_t slots = std::max<std::uint64_t>(
          1, mem.working_set / align);
      state.chase_cursor =
          state.base + (scramble(state.chase_cursor) % slots) * align;
      return state.chase_cursor;
    }
    case MemPattern::Gather: {
      const std::uint64_t slots = std::max<std::uint64_t>(
          1, mem.working_set / align);
      std::uint64_t addr;
      if (state.last_page != 0 && rng.bernoulli(0.8)) {
        addr = state.last_page + rng.uniform(kPageBytes / align) * align;
      } else {
        addr = state.base + rng.uniform(slots) * align;
        state.last_page = addr & ~(kPageBytes - 1);
      }
      return addr;
    }
  }
  RINGCLU_UNREACHABLE("unknown memory pattern");
}

void KernelInstance::emit_iteration(std::vector<MicroOp>& out, Rng& rng,
                                    bool exit_iteration) {
  const std::vector<KernelOp>& body = kernel_.body;
  int skip = 0;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (skip > 0) {
      --skip;
      continue;
    }
    const KernelOp& templ = body[i];
    MicroOp op;
    op.pc = code_base_ + i * 4;
    op.cls = templ.cls;
    op.src[0] = resolve(templ.src0);
    op.src[1] = resolve(templ.src1);
    if (templ.dst_vid >= 0) {
      // The destination register is this iteration's window slot.
      const ValueRegs& regs =
          value_regs_[static_cast<std::size_t>(templ.dst_vid)];
      op.dst = RegId::make(regs.cls,
                           regs.base +
                               static_cast<int>(iteration_ % regs.window));
    }

    if (op_is_mem(templ.cls)) {
      op.mem_addr = next_address(i, templ.mem, rng);
      op.mem_size = templ.mem.access_size;
    } else if (templ.cls == OpClass::Branch) {
      const BranchSpec& spec = templ.branch;
      op.branch_kind = BranchKind::Conditional;
      bool taken;
      if (spec.pattern_period > 0) {
        taken = static_cast<int>(iteration_ %
                                 static_cast<std::uint64_t>(
                                     spec.pattern_period)) <
                spec.pattern_taken;
      } else {
        taken = rng.bernoulli(spec.taken_prob);
      }
      op.taken = taken;
      const std::uint64_t fallthrough = op.pc + 4;
      op.target = taken ? fallthrough + 4ull * static_cast<std::uint64_t>(
                                                   spec.skip_ops)
                        : fallthrough;
      if (taken) skip = spec.skip_ops;
    }
    out.push_back(op);
  }

  // Backedge: taken on every iteration except the exit.
  MicroOp backedge;
  backedge.pc = code_base_ + body.size() * 4;
  backedge.cls = OpClass::Branch;
  backedge.branch_kind = BranchKind::Conditional;
  backedge.taken = !exit_iteration;
  backedge.target = backedge.taken ? code_base_ : backedge.pc + 4;
  out.push_back(backedge);

  ++iteration_;
}

SyntheticProgram::SyntheticProgram(ProgramSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)),
      seed_(derive_seed(seed, fnv1a(spec_.name))),
      rng_(seed_) {
  RINGCLU_EXPECTS(!spec_.segments.empty());
  std::uint64_t code_cursor = kCodeOrigin;
  std::uint64_t data_cursor = kDataOrigin;
  for (const SegmentSpec& segment : spec_.segments) {
    segment.kernel.validate();
    RINGCLU_EXPECTS(segment.min_iters >= 1 &&
                    segment.min_iters <= segment.max_iters);
    call_sites_.push_back(code_cursor);
    code_cursor += 64;  // dispatcher slot
    instances_.emplace_back(segment.kernel, code_cursor, data_cursor);
    code_cursor += segment.kernel.code_bytes() + 64 + spec_.code_spread;
    // Each memory op reserves its own 16 MiB region.
    std::size_t mem_ops = 0;
    for (const KernelOp& op : segment.kernel.body) {
      if (op_is_mem(op.cls)) ++mem_ops;
    }
    data_cursor += kDataRegion * std::max<std::size_t>(1, mem_ops);
    weights_.push_back(segment.weight);
  }
  buffer_.reserve(4096);
}

void SyntheticProgram::do_reset() {
  rng_ = Rng(seed_);
  buffer_.clear();
  cursor_ = 0;
  std::vector<KernelInstance> fresh;
  fresh.reserve(instances_.size());
  std::uint64_t code_cursor = kCodeOrigin;
  std::uint64_t data_cursor = kDataOrigin;
  for (const SegmentSpec& segment : spec_.segments) {
    code_cursor += 64;
    fresh.emplace_back(segment.kernel, code_cursor, data_cursor);
    code_cursor += segment.kernel.code_bytes() + 64 + spec_.code_spread;
    std::size_t mem_ops = 0;
    for (const KernelOp& op : segment.kernel.body) {
      if (op_is_mem(op.cls)) ++mem_ops;
    }
    data_cursor += kDataRegion * std::max<std::size_t>(1, mem_ops);
  }
  instances_ = std::move(fresh);
}

void SyntheticProgram::refill() {
  buffer_.clear();
  cursor_ = 0;

  const std::size_t index = rng_.weighted_pick(
      std::span<const double>(weights_.data(), weights_.size()));
  KernelInstance& instance = instances_[index];
  const SegmentSpec& segment = spec_.segments[index];

  if (spec_.use_calls) {
    MicroOp call;
    call.pc = call_sites_[index];
    call.cls = OpClass::Branch;
    call.branch_kind = BranchKind::Call;
    call.taken = true;
    call.target = instance.code_base();
    buffer_.push_back(call);
  }

  const int iters = static_cast<int>(
      rng_.uniform_range(segment.min_iters, segment.max_iters));
  instance.begin_visit();
  for (int it = 0; it < iters; ++it) {
    instance.emit_iteration(buffer_, rng_, it + 1 == iters);
  }

  if (spec_.use_calls) {
    MicroOp ret;
    ret.pc = instance.code_end();
    ret.cls = OpClass::Branch;
    ret.branch_kind = BranchKind::Return;
    ret.taken = true;
    ret.target = call_sites_[index] + 4;
    buffer_.push_back(ret);
  }
}

bool SyntheticProgram::produce(MicroOp& out) {
  if (cursor_ >= buffer_.size()) refill();
  out = buffer_[cursor_++];
  return true;
}

}  // namespace ringclu
