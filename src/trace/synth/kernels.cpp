#include "trace/synth/kernels.h"

#include "util/assert.h"

namespace ringclu::kernels {
namespace {

using Op = SymOperand;

MemStreamSpec seq(std::uint64_t working_set, std::uint32_t stride = 8) {
  MemStreamSpec mem;
  mem.pattern = MemPattern::SeqStride;
  mem.stride = stride;
  mem.working_set = working_set;
  return mem;
}

MemStreamSpec rnd(std::uint64_t working_set) {
  MemStreamSpec mem;
  mem.pattern = MemPattern::Random;
  mem.working_set = working_set;
  return mem;
}

MemStreamSpec chase(std::uint64_t working_set) {
  MemStreamSpec mem;
  mem.pattern = MemPattern::Chase;
  mem.working_set = working_set;
  return mem;
}

MemStreamSpec gather(std::uint64_t working_set) {
  MemStreamSpec mem;
  mem.pattern = MemPattern::Gather;
  mem.working_set = working_set;
  return mem;
}

BranchSpec prob_branch(double taken_prob, int skip_ops = 0) {
  BranchSpec spec;
  spec.taken_prob = taken_prob;
  spec.skip_ops = skip_ops;
  return spec;
}

BranchSpec pattern_branch(int period, int taken, int skip_ops = 0) {
  BranchSpec spec;
  spec.pattern_period = period;
  spec.pattern_taken = taken;
  spec.skip_ops = skip_ops;
  return spec;
}

}  // namespace

Kernel daxpy(std::uint64_t working_set) {
  KernelBuilder b("daxpy");
  const Op stride = b.inv(RegClass::Int);
  const Op a = b.inv(RegClass::Fp);
  const Op i = b.op(OpClass::IntAlu, Op::value(0, 1), stride);  // i = i + s
  const Op x = b.load(RegClass::Fp, seq(working_set), i);
  const Op y = b.load(RegClass::Fp, seq(working_set), i);
  const Op t = b.op(OpClass::FpMult, x, a);
  const Op r = b.op(OpClass::FpAdd, t, y);
  b.store(seq(working_set), i, r);
  return b.build();
}

Kernel dot_reduce(std::uint64_t working_set) {
  KernelBuilder b("dot_reduce");
  const Op stride = b.inv(RegClass::Int);
  const Op i = b.op(OpClass::IntAlu, Op::value(0, 1), stride);
  const Op x = b.load(RegClass::Fp, seq(working_set), i);
  const Op y = b.load(RegClass::Fp, seq(working_set), i);
  const Op t = b.op(OpClass::FpMult, x, y);
  // vid of the accumulator is t's vid + 1 == 4; self-reference with lag 1.
  b.op(OpClass::FpAdd, Op::value(4, 1), t);
  return b.build();
}

Kernel stencil3(std::uint64_t working_set) {
  KernelBuilder b("stencil3");
  const Op stride = b.inv(RegClass::Int);
  const Op c = b.inv(RegClass::Fp);
  const Op i = b.op(OpClass::IntAlu, Op::value(0, 1), stride);
  const Op x = b.load(RegClass::Fp, seq(working_set), i);  // vid 1
  const Op t1 = b.op(OpClass::FpAdd, x, Op::value(1, 1));  // x[i] + x[i-1]
  const Op t2 = b.op(OpClass::FpAdd, t1, Op::value(1, 2));  // + x[i-2]
  const Op r = b.op(OpClass::FpMult, t2, c);
  b.store(seq(working_set), i, r);
  return b.build();
}

Kernel fp_poly() {
  KernelBuilder b("fp_poly");
  const Op c1 = b.inv(RegClass::Fp);
  const Op c2 = b.inv(RegClass::Fp);
  const Op a = b.op(OpClass::FpMult, Op::value(0, 1), c1);  // a = a*c1
  const Op s = b.op(OpClass::FpAdd, a, Op::value(1, 1));    // s = a + s
  b.op(OpClass::FpMult, s, c2);                             // t = s*c2
  return b.build();
}

Kernel fp_div_mix(std::uint64_t working_set) {
  KernelBuilder b("fp_div_mix");
  const Op stride = b.inv(RegClass::Int);
  const Op c = b.inv(RegClass::Fp);
  const Op i = b.op(OpClass::IntAlu, Op::value(0, 1), stride);
  const Op x = b.load(RegClass::Fp, seq(working_set), i);
  const Op d = b.op(OpClass::FpDiv, x, c);
  const Op t = b.op(OpClass::FpMult, x, c);  // parallel work past the divide
  const Op u = b.op(OpClass::FpAdd, t, Op::value(4, 1));
  b.store(seq(working_set), i, d);
  b.store(seq(working_set), i, u);
  return b.build();
}

Kernel butterfly(std::uint64_t working_set) {
  KernelBuilder b("butterfly");
  const Op stride = b.inv(RegClass::Int);
  const Op i = b.op(OpClass::IntAlu, Op::value(0, 1), stride);
  const Op x0 = b.load(RegClass::Fp, seq(working_set, 16), i);
  const Op x1 = b.load(RegClass::Fp, seq(working_set, 16), i);
  const Op x2 = b.load(RegClass::Fp, seq(working_set, 16), i);
  const Op x3 = b.load(RegClass::Fp, seq(working_set, 16), i);
  const Op s0 = b.op(OpClass::FpAdd, x0, x1);
  const Op s1 = b.op(OpClass::FpAdd, x2, x3);
  const Op m0 = b.op(OpClass::FpMult, x0, x1);
  const Op m1 = b.op(OpClass::FpMult, x2, x3);
  const Op r0 = b.op(OpClass::FpAdd, s0, s1);
  const Op r1 = b.op(OpClass::FpAdd, m0, m1);
  b.store(seq(working_set, 16), i, r0);
  b.store(seq(working_set, 16), i, r1);
  return b.build();
}

Kernel particle_gather(std::uint64_t working_set) {
  KernelBuilder b("particle_gather");
  const Op stride = b.inv(RegClass::Int);
  const Op dt = b.inv(RegClass::Fp);
  const Op i = b.op(OpClass::IntAlu, Op::value(0, 1), stride);
  const Op idx = b.load(RegClass::Int, seq(working_set / 4), i);
  const Op p = b.load(RegClass::Fp, gather(working_set), idx);
  const Op v = b.op(OpClass::FpMult, p, dt);
  const Op w = b.op(OpClass::FpAdd, v, p);
  b.store(gather(working_set), idx, w);
  return b.build();
}

Kernel fp_mixed(std::uint64_t working_set) {
  KernelBuilder b("fp_mixed");
  const Op stride = b.inv(RegClass::Int);
  const Op k = b.inv(RegClass::Int);
  const Op c = b.inv(RegClass::Fp);
  const Op i = b.op(OpClass::IntAlu, Op::value(0, 1), stride);
  const Op x = b.load(RegClass::Fp, seq(working_set), i);
  const Op t = b.op(OpClass::FpMult, x, c);
  const Op u = b.op(OpClass::FpAdd, t, Op::value(3, 1));  // light recurrence
  const Op j = b.op(OpClass::IntAlu, i, k);
  b.store(seq(working_set), j, u);
  b.branch(pattern_branch(8, 1));
  return b.build();
}

Kernel int_chain(double branch_taken_prob) {
  KernelBuilder b("int_chain");
  const Op k1 = b.inv(RegClass::Int);
  const Op k2 = b.inv(RegClass::Int);
  const Op x = b.op(OpClass::IntAlu, Op::value(0, 1), k1);  // x = f(x)
  const Op y = b.op(OpClass::IntAlu, x, Op::value(1, 1));   // y = f(x, y)
  const Op z = b.op(OpClass::IntAlu, y, x);
  b.branch(prob_branch(branch_taken_prob, /*skip_ops=*/1), z, k2);
  b.op(OpClass::IntAlu, z, k2);  // skipped when taken
  return b.build();
}

Kernel int_wide() {
  KernelBuilder b("int_wide");
  const Op k = b.inv(RegClass::Int);
  const Op a = b.op(OpClass::IntAlu, Op::value(0, 1), k);
  const Op c = b.op(OpClass::IntAlu, Op::value(1, 1), k);
  const Op d = b.op(OpClass::IntAlu, Op::value(2, 1), k);
  const Op e = b.op(OpClass::IntAlu, Op::value(3, 1), k);
  const Op f = b.op(OpClass::IntAlu, a, c);
  const Op g = b.op(OpClass::IntAlu, d, e);
  b.op(OpClass::IntAlu, f, g);
  return b.build();
}

Kernel ptr_chase(std::uint64_t working_set) {
  KernelBuilder b("ptr_chase");
  const Op k = b.inv(RegClass::Int);
  // p = *p : self-dependent load, the defining mcf pattern.
  const Op p = b.load(RegClass::Int, chase(working_set), Op::value(0, 1));
  const Op v = b.load(RegClass::Int, gather(working_set / 2), p);
  const Op s = b.op(OpClass::IntAlu, v, Op::value(2, 1));
  b.branch(prob_branch(0.15), s, k);
  return b.build();
}

Kernel hash_lookup(std::uint64_t working_set, double branch_taken_prob) {
  KernelBuilder b("hash_lookup");
  const Op k1 = b.inv(RegClass::Int);
  const Op k2 = b.inv(RegClass::Int);
  const Op i = b.op(OpClass::IntAlu, Op::value(0, 1), k1);
  const Op h = b.op(OpClass::IntMult, i, k2);
  const Op h2 = b.op(OpClass::IntAlu, h, i);
  const Op v = b.load(RegClass::Int, rnd(working_set), h2);
  b.branch(prob_branch(branch_taken_prob, /*skip_ops=*/2), v, k1);
  const Op a = b.op(OpClass::IntAlu, v, k2);  // skipped when taken
  b.op(OpClass::IntAlu, a, i);                // skipped when taken
  return b.build();
}

Kernel branchy_blocks(std::uint64_t working_set) {
  KernelBuilder b("branchy_blocks");
  const Op k = b.inv(RegClass::Int);
  const Op x = b.op(OpClass::IntAlu, Op::value(0, 1), k);
  b.branch(pattern_branch(7, 3, /*skip_ops=*/1), x, k);
  const Op y = b.op(OpClass::IntAlu, x, Op::value(2, 1));
  b.branch(prob_branch(0.15, /*skip_ops=*/1), y, k);
  const Op z = b.op(OpClass::IntAlu, y, x);
  const Op v = b.load(RegClass::Int, rnd(working_set), z);
  b.branch(prob_branch(0.30), v, k);  // data-dependent, hard to predict
  b.op(OpClass::IntAlu, v, z);
  return b.build();
}

Kernel copy_loop(std::uint64_t working_set) {
  KernelBuilder b("copy_loop");
  const Op stride = b.inv(RegClass::Int);
  const Op k = b.inv(RegClass::Int);
  const Op i = b.op(OpClass::IntAlu, Op::value(0, 1), stride);
  const Op v = b.load(RegClass::Int, seq(working_set), i);
  const Op w = b.op(OpClass::IntAlu, v, k);
  b.store(seq(working_set), i, w);
  return b.build();
}

Kernel bitboard() {
  KernelBuilder b("bitboard");
  const Op m = b.inv(RegClass::Int);
  const Op k = b.inv(RegClass::Int);
  const Op x = b.op(OpClass::IntAlu, Op::value(0, 1), m);
  const Op y = b.op(OpClass::IntMult, x, x);
  const Op z = b.op(OpClass::IntAlu, y, x);
  const Op w = b.op(OpClass::IntAlu, z, k);
  b.branch(pattern_branch(4, 1), w, m);
  return b.build();
}

Kernel lut_fsm(std::uint64_t working_set, double branch_taken_prob) {
  KernelBuilder b("lut_fsm");
  const Op k = b.inv(RegClass::Int);
  // t = table[state]; state = f(t, state); plus bookkeeping ALU work.
  const Op t = b.load(RegClass::Int, rnd(working_set), Op::value(1, 1));
  const Op state = b.op(OpClass::IntAlu, t, Op::value(1, 1));  // vid 1
  const Op cost = b.op(OpClass::IntAlu, t, k);
  const Op acc = b.op(OpClass::IntAlu, cost, Op::value(3, 1));  // vid 3
  b.branch(prob_branch(branch_taken_prob), acc, k);
  (void)state;
  return b.build();
}

Kernel string_scan(std::uint64_t working_set) {
  KernelBuilder b("string_scan");
  const Op stride = b.inv(RegClass::Int);
  const Op k = b.inv(RegClass::Int);
  const Op i = b.op(OpClass::IntAlu, Op::value(0, 1), stride);
  const Op c = b.load(RegClass::Int, seq(working_set, 8), i);
  b.branch(prob_branch(0.08), c, k);  // rare match: well predicted
  b.op(OpClass::IntAlu, c, Op::value(2, 1));
  return b.build();
}

std::vector<std::string_view> all_kernel_names() {
  return {"daxpy",         "dot_reduce", "stencil3",     "fp_poly",
          "fp_div_mix",    "butterfly",  "particle_gather", "fp_mixed",
          "int_chain",     "int_wide",   "ptr_chase",    "hash_lookup",
          "branchy_blocks", "copy_loop", "bitboard",     "lut_fsm",
          "string_scan"};
}

Kernel make_by_name(std::string_view name) {
  constexpr std::uint64_t kWs = 1ull << 20;
  if (name == "daxpy") return daxpy(kWs);
  if (name == "dot_reduce") return dot_reduce(kWs);
  if (name == "stencil3") return stencil3(kWs);
  if (name == "fp_poly") return fp_poly();
  if (name == "fp_div_mix") return fp_div_mix(kWs);
  if (name == "butterfly") return butterfly(kWs);
  if (name == "particle_gather") return particle_gather(kWs);
  if (name == "fp_mixed") return fp_mixed(kWs);
  if (name == "int_chain") return int_chain(0.18);
  if (name == "int_wide") return int_wide();
  if (name == "ptr_chase") return ptr_chase(kWs);
  if (name == "hash_lookup") return hash_lookup(kWs, 0.2);
  if (name == "branchy_blocks") return branchy_blocks(kWs);
  if (name == "copy_loop") return copy_loop(kWs);
  if (name == "bitboard") return bitboard();
  if (name == "lut_fsm") return lut_fsm(kWs, 0.25);
  if (name == "string_scan") return string_scan(kWs);
  RINGCLU_UNREACHABLE("unknown kernel name");
}

}  // namespace ringclu::kernels
