#pragma once

/// \file kernel.h
/// The kernel DSL of the synthetic workload generator.
///
/// A kernel describes one loop iteration as a sequence of micro-op
/// templates whose operands are symbolic: either loop-invariant registers
/// (base pointers, constants) or values defined by earlier template ops,
/// possibly `lag` iterations back (loop-carried dependences).  The
/// generator assigns architectural registers by giving each defined value a
/// rotation window of lag+1 registers, which preserves the intended
/// dependence-graph shape through the simulator's renaming.
///
/// Memory template ops carry an address-stream pattern (sequential,
/// random-in-working-set, pointer-chase, clustered gather) and conditional
/// branches carry a predictability model (periodic pattern or Bernoulli).

#include <cstdint>
#include <string>
#include <vector>

#include "isa/micro_op.h"
#include "util/assert.h"

namespace ringclu {

/// Symbolic operand of a kernel template op.
struct SymOperand {
  enum class Kind : std::uint8_t { None, Value, Invariant };
  Kind kind = Kind::None;
  std::int16_t index = 0;  ///< value id or invariant slot
  std::int16_t lag = 0;    ///< iterations back (Value only)

  [[nodiscard]] static constexpr SymOperand none() { return SymOperand{}; }
  [[nodiscard]] static constexpr SymOperand value(int vid, int lag = 0) {
    return SymOperand{Kind::Value, static_cast<std::int16_t>(vid),
                      static_cast<std::int16_t>(lag)};
  }
  [[nodiscard]] static constexpr SymOperand invariant(RegClass cls,
                                                      int slot) {
    // Invariant slots are per-class; the class is encoded in the high bit.
    return SymOperand{Kind::Invariant,
                      static_cast<std::int16_t>(
                          slot | (cls == RegClass::Fp ? 0x100 : 0)),
                      0};
  }

  [[nodiscard]] RegClass invariant_class() const {
    RINGCLU_EXPECTS(kind == Kind::Invariant);
    return (index & 0x100) ? RegClass::Fp : RegClass::Int;
  }
  [[nodiscard]] int invariant_slot() const {
    RINGCLU_EXPECTS(kind == Kind::Invariant);
    return index & 0xff;
  }
};

/// Address-stream pattern of a memory template op.
enum class MemPattern : std::uint8_t {
  SeqStride,  ///< base + iteration * stride (streaming)
  Random,     ///< uniformly random, aligned, within the working set
  Chase,      ///< deterministic pointer chain within the working set
  Gather,     ///< random with page-level locality (80% same 4KB page)
};

struct MemStreamSpec {
  MemPattern pattern = MemPattern::SeqStride;
  std::uint32_t stride = 8;
  std::uint64_t working_set = 1ull << 20;
  std::uint8_t access_size = 8;
};

/// Behaviour of a conditional branch template op.
struct BranchSpec {
  /// Probability of "taken" when pattern_period == 0.
  double taken_prob = 0.5;
  /// When > 0, outcome is the deterministic pattern
  /// (iteration % pattern_period) < pattern_taken (fully predictable by
  /// history-based predictors).
  int pattern_period = 0;
  int pattern_taken = 0;
  /// Template ops skipped when the branch is taken (hammock body).
  int skip_ops = 0;
};

/// One template op of a kernel body.
struct KernelOp {
  OpClass cls = OpClass::IntAlu;
  RegClass dst_cls = RegClass::Int;
  std::int16_t dst_vid = -1;  ///< value defined, -1 for store/branch
  SymOperand src0;
  SymOperand src1;
  MemStreamSpec mem;    ///< Load/Store only
  BranchSpec branch;    ///< Branch only
};

/// A complete kernel.
struct Kernel {
  std::string name;
  int int_invariants = 0;
  int fp_invariants = 0;
  std::vector<KernelOp> body;

  /// Checks internal consistency (operand references, register budget) and
  /// aborts on violation.  Returns *this for chaining.
  const Kernel& validate() const;

  /// Registers needed for the rotation windows of one class.
  [[nodiscard]] int register_demand(RegClass cls) const;

  /// Static code size in bytes (body plus the generated backedge).
  [[nodiscard]] std::uint64_t code_bytes() const {
    return (body.size() + 1) * 4;
  }
};

/// Fluent construction helper so kernel definitions stay compact.
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name) { kernel_.name = std::move(name); }

  /// Declares a loop-invariant register; returns an operand referencing it.
  SymOperand inv(RegClass cls) {
    int& count = cls == RegClass::Int ? kernel_.int_invariants
                                      : kernel_.fp_invariants;
    return SymOperand::invariant(cls, count++);
  }

  /// Adds a computational op; returns the operand for its result.
  SymOperand op(OpClass cls, SymOperand a = SymOperand::none(),
                SymOperand b = SymOperand::none());

  /// Adds a load; \p addr is the address operand (dataflow only — the
  /// numeric address comes from \p mem).
  SymOperand load(RegClass dst_cls, const MemStreamSpec& mem, SymOperand addr);

  /// Adds a store of \p data to the stream \p mem addressed by \p addr.
  void store(const MemStreamSpec& mem, SymOperand addr, SymOperand data);

  /// Adds an internal conditional branch.
  void branch(const BranchSpec& spec, SymOperand a = SymOperand::none(),
              SymOperand b = SymOperand::none());

  [[nodiscard]] Kernel build() {
    kernel_.validate();
    return kernel_;
  }

 private:
  SymOperand define(KernelOp op, RegClass dst_cls);

  Kernel kernel_;
  int next_vid_ = 0;
};

}  // namespace ringclu
