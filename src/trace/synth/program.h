#pragma once

/// \file program.h
/// Assembles kernels into a synthetic program: a weighted set of loop
/// segments visited repeatedly, each with its own code region (I-cache
/// footprint), data region and iteration-count distribution; optional
/// call/return wrappers exercise the BTB and return-address stack.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/synth/kernel.h"
#include "trace/trace_source.h"
#include "util/rng.h"

namespace ringclu {

/// One loop nest of the program.
struct SegmentSpec {
  Kernel kernel;
  int min_iters = 16;
  int max_iters = 64;
  double weight = 1.0;  ///< visit probability weight
};

/// A full synthetic program.
struct ProgramSpec {
  std::string name;
  bool is_fp = false;
  std::vector<SegmentSpec> segments;
  bool use_calls = false;      ///< wrap segment visits in call/return
  std::uint64_t code_spread = 0;  ///< extra padding between code regions
};

/// Emits the dynamic stream for one kernel: register assignment, PC
/// assignment, address-stream state and branch-outcome state.
class KernelInstance {
 public:
  KernelInstance(const Kernel& kernel, std::uint64_t code_base,
                 std::uint64_t data_base);

  /// Appends one loop iteration (body plus backedge) to \p out.
  /// \p exit_iteration marks the final iteration (backedge not taken).
  void emit_iteration(std::vector<MicroOp>& out, Rng& rng,
                      bool exit_iteration);

  /// Resets loop-iteration state (address streams persist across visits so
  /// data locality spans visits, as it does in real programs).
  void begin_visit() { iteration_ = 0; }

  [[nodiscard]] std::uint64_t code_base() const { return code_base_; }
  [[nodiscard]] std::uint64_t code_end() const {
    return code_base_ + kernel_.code_bytes();
  }
  [[nodiscard]] const Kernel& kernel() const { return kernel_; }

 private:
  struct ValueRegs {
    std::uint8_t base = 0;   ///< first register of the rotation window
    std::uint8_t window = 1; ///< window size (max lag + 1)
    RegClass cls = RegClass::Int;
  };

  struct MemState {
    std::uint64_t base = 0;
    std::uint64_t seq_index = 0;
    std::uint64_t chase_cursor = 0;
    std::uint64_t last_page = 0;
  };

  [[nodiscard]] RegId resolve(const SymOperand& operand) const;
  [[nodiscard]] std::uint64_t next_address(std::size_t op_index,
                                           const MemStreamSpec& mem, Rng& rng);

  // Owned by value: instances outlive the (often temporary) Kernel they
  // are built from.
  Kernel kernel_;
  std::uint64_t code_base_;
  std::vector<ValueRegs> value_regs_;   // by vid
  std::vector<MemState> mem_state_;     // by body op index
  std::uint64_t iteration_ = 0;
};

/// The trace source: an endless weighted walk over the program's segments.
class SyntheticProgram final : public TraceSource {
 public:
  SyntheticProgram(ProgramSpec spec, std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override { return spec_.name; }

  [[nodiscard]] const ProgramSpec& spec() const { return spec_; }

 protected:
  bool produce(MicroOp& out) override;
  void do_reset() override;

 private:
  void refill();

  ProgramSpec spec_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<KernelInstance> instances_;
  std::vector<double> weights_;
  std::vector<std::uint64_t> call_sites_;  // dispatcher PC per segment
  std::vector<MicroOp> buffer_;
  std::size_t cursor_ = 0;
};

}  // namespace ringclu
