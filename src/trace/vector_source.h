#pragma once

/// \file vector_source.h
/// A TraceSource over an in-memory vector of micro-ops, optionally looped.
/// Used for crafted cycle-accurate timing tests and as a convenient way to
/// feed hand-built instruction sequences to the simulator.

#include <string>
#include <utility>
#include <vector>

#include "trace/trace_source.h"
#include "util/assert.h"

namespace ringclu {

class VectorTraceSource final : public TraceSource {
 public:
  /// \p loop = true replays the sequence forever (PCs repeat, like a loop
  /// body); false ends the stream after one pass.
  explicit VectorTraceSource(std::vector<MicroOp> ops, bool loop = true,
                             std::string name = "vector")
      : ops_(std::move(ops)), loop_(loop), name_(std::move(name)) {
    RINGCLU_EXPECTS(!ops_.empty());
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

 protected:
  bool produce(MicroOp& out) override {
    if (cursor_ >= ops_.size()) {
      if (!loop_) return false;
      cursor_ = 0;
    }
    out = ops_[cursor_++];
    return true;
  }

  void do_reset() override { cursor_ = 0; }

 private:
  std::vector<MicroOp> ops_;
  bool loop_;
  std::string name_;
  std::size_t cursor_ = 0;
};

}  // namespace ringclu
