#include "trace/registry.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "trace/pack/pack_reader.h"
#include "trace/synth/suite.h"
#include "util/assert.h"
#include "util/env.h"
#include "util/format.h"

namespace ringclu {

bool is_trace_benchmark_name(std::string_view name) {
  return starts_with(name, kTraceBenchmarkPrefix);
}

TraceBenchmarkRegistry& TraceBenchmarkRegistry::global() {
  static TraceBenchmarkRegistry registry;
  return registry;
}

void TraceBenchmarkRegistry::ensure_env_scanned() const {
  if (env_scanned_) return;
  env_scanned_ = true;
  const std::optional<std::string> dirs = env_string("RINGCLU_TRACE_DIR");
  if (!dirs.has_value()) return;
  auto* self = const_cast<TraceBenchmarkRegistry*>(this);
  for (const std::string& dir : split(*dirs, ':')) {
    self->add_dir_locked(dir);
  }
}

int TraceBenchmarkRegistry::add_dir(const std::string& dir) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ensure_env_scanned();
  return add_dir_locked(dir);
}

int TraceBenchmarkRegistry::add_dir_locked(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    std::fprintf(stderr, "ringclu: trace dir '%s': %s\n", dir.c_str(),
                 ec.message().c_str());
    return 0;
  }
  // Sorted scan so duplicate stems across files resolve deterministically
  // (directory iteration order is filesystem-dependent).
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string path = entry.path().string();
    if (path.size() > kPackExtension.size() &&
        path.compare(path.size() - kPackExtension.size(),
                     kPackExtension.size(), kPackExtension) == 0) {
      paths.push_back(path);
    }
  }
  std::sort(paths.begin(), paths.end());

  int registered = 0;
  for (const std::string& path : paths) {
    std::string error;
    const std::unique_ptr<TracePackReader> reader =
        TracePackReader::open(path, &error);
    if (reader == nullptr) {
      std::fprintf(stderr, "ringclu: skipping trace pack: %s\n",
                   error.c_str());
      continue;
    }
    TraceBenchmarkInfo info;
    const std::string stem = std::filesystem::path(path).stem().string();
    info.name = std::string(kTraceBenchmarkPrefix) + stem;
    info.path = path;
    info.total_ops = reader->total_ops();
    info.digest = reader->content_digest();
    const auto [pos, inserted] = entries_.emplace(info.name, info);
    if (inserted) {
      ++registered;
    } else if (pos->second.digest != info.digest) {
      std::fprintf(stderr,
                   "ringclu: trace pack '%s' shadowed by earlier '%s' "
                   "with different content\n",
                   path.c_str(), pos->second.path.c_str());
    }
  }
  return registered;
}

std::optional<TraceBenchmarkInfo> TraceBenchmarkRegistry::find(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ensure_env_scanned();
  const auto it = entries_.find(std::string(name));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<TraceBenchmarkInfo> TraceBenchmarkRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ensure_env_scanned();
  std::vector<TraceBenchmarkInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, info] : entries_) out.push_back(info);
  return out;
}

std::string TraceBenchmarkRegistry::names_joined() const {
  std::vector<std::string> names;
  for (const TraceBenchmarkInfo& info : list()) names.push_back(info.name);
  return join(names, ", ");
}

bool TraceBenchmarkRegistry::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ensure_env_scanned();
  return entries_.empty();
}

void TraceBenchmarkRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  env_scanned_ = false;
}

std::unique_ptr<TraceSource> make_workload_trace(std::string_view benchmark,
                                                 std::uint64_t seed) {
  if (is_trace_benchmark_name(benchmark)) {
    const std::optional<TraceBenchmarkInfo> info =
        TraceBenchmarkRegistry::global().find(benchmark);
    RINGCLU_EXPECTS(info.has_value());
    std::string error;
    std::unique_ptr<TracePackReader> reader =
        TracePackReader::open(info->path, &error);
    if (reader == nullptr) {
      // Registered at scan time but unreadable now (deleted/truncated
      // underfoot): a precondition violation, not a recoverable state.
      std::fprintf(stderr, "ringclu: %s\n", error.c_str());
      RINGCLU_EXPECTS(reader != nullptr);
    }
    return reader;
  }
  return make_benchmark_trace(benchmark, seed);
}

std::string keyed_workload_name(std::string_view benchmark) {
  if (is_trace_benchmark_name(benchmark)) {
    const std::optional<TraceBenchmarkInfo> info =
        TraceBenchmarkRegistry::global().find(benchmark);
    if (info.has_value()) {
      return info->name + "@" + format_digest(info->digest);
    }
  }
  return std::string(benchmark);
}

}  // namespace ringclu
