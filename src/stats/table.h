#pragma once

/// \file table.h
/// Text table builder used by the bench harness to print the paper's
/// figure/table series in aligned column, CSV and markdown forms.

#include <string>
#include <string_view>
#include <vector>

namespace ringclu {

/// A rectangular text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row.  Rows must be completed (all columns filled) before
  /// rendering.
  void begin_row();

  void add_cell(std::string_view text);
  void add_cell(double value, int decimals = 3);
  void add_cell(long long value);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return headers_.size(); }

  /// Space-aligned rendering for terminals.
  [[nodiscard]] std::string render_aligned() const;

  /// RFC-4180 comma-separated rendering: cells containing commas, double
  /// quotes or newlines are quoted, with embedded quotes doubled.
  [[nodiscard]] std::string render_csv() const;

  /// GitHub-flavored markdown rendering.
  [[nodiscard]] std::string render_markdown() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ringclu
