#include "stats/metric_sink.h"

#include "util/assert.h"
#include "util/format.h"

namespace ringclu {

// ---- MemoryMetricSink -------------------------------------------------

void MemoryMetricSink::on_interval(const MetricRunContext& context,
                                   const IntervalSample& sample) {
  const std::lock_guard<std::mutex> lock(mutex_);
  intervals_.push_back(IntervalRecord{context, sample});
}

void MemoryMetricSink::on_run_complete(const MetricRunContext& context,
                                       const SimResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  runs_.push_back(RunRecord{context, result});
}

std::vector<MemoryMetricSink::IntervalRecord> MemoryMetricSink::intervals()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return intervals_;
}

std::vector<MemoryMetricSink::RunRecord> MemoryMetricSink::runs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return runs_;
}

std::vector<IntervalSample> MemoryMetricSink::intervals_for(
    std::string_view config_name, std::string_view benchmark) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<IntervalSample> out;
  for (const IntervalRecord& record : intervals_) {
    if (record.context.config_name == config_name &&
        record.context.benchmark == benchmark) {
      out.push_back(record.sample);
    }
  }
  return out;
}

// ---- JsonLinesMetricSink ----------------------------------------------

JsonLinesMetricSink::JsonLinesMetricSink(const std::string& path,
                                         const MetricsRegistry& registry)
    : registry_(registry), path_(path) {
  if (path_ != "-") {
    file_ = std::fopen(path_.c_str(), "a");
    RINGCLU_EXPECTS(file_ != nullptr && "cannot open JSONL metrics file");
  }
}

JsonLinesMetricSink::~JsonLinesMetricSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonLinesMetricSink::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::FILE* out = file_ != nullptr ? file_ : stdout;
  std::fprintf(out, "%s\n", line.c_str());
  // Flushed per record so tail-readers and crashed runs see whole lines.
  std::fflush(out);
}

void JsonLinesMetricSink::on_interval(const MetricRunContext& context,
                                      const IntervalSample& sample) {
  write_line(interval_to_json(context, sample, registry_));
}

void JsonLinesMetricSink::on_run_complete(const MetricRunContext& context,
                                          const SimResult& result) {
  (void)context;  // Identity already inside the result record.
  write_line(result_to_json(result, registry_));
}

std::string JsonLinesMetricSink::describe() const {
  return "jsonl:" + (path_ == "-" ? std::string("stdout") : path_);
}

// ---- CsvMetricSink ----------------------------------------------------

namespace {

std::vector<std::string> csv_headers(const MetricsRegistry& registry) {
  // Per-interval committed/cycles deltas come from the registry's
  // counter metrics, so only run identity, interval bounds and the
  // cumulative pair get fixed columns — header names stay unique (strict
  // CSV consumers reject duplicate columns).
  std::vector<std::string> headers = {
      "config", "benchmark",            "seed",
      "index",  "final",                "interval_instrs",
      "cumulative_committed",           "cumulative_cycles"};
  for (const MetricDesc& metric : registry.metrics()) {
    if (metric.time_resolved) headers.push_back(metric.name);
  }
  return headers;
}

}  // namespace

CsvMetricSink::CsvMetricSink(std::string path,
                             const MetricsRegistry& registry)
    : registry_(registry),
      path_(std::move(path)),
      table_(csv_headers(registry)) {}

CsvMetricSink::~CsvMetricSink() { flush(); }

void CsvMetricSink::on_interval(const MetricRunContext& context,
                                const IntervalSample& sample) {
  SimResult delta;
  delta.config_name = context.config_name;
  delta.benchmark = context.benchmark;
  delta.counters = sample.delta;

  const std::lock_guard<std::mutex> lock(mutex_);
  table_.begin_row();
  table_.add_cell(context.config_name);
  table_.add_cell(context.benchmark);
  table_.add_cell(static_cast<long long>(context.seed));
  table_.add_cell(static_cast<long long>(sample.index));
  table_.add_cell(sample.final_sample ? "1" : "0");
  table_.add_cell(static_cast<long long>(sample.interval_instrs));
  table_.add_cell(static_cast<long long>(sample.cumulative.committed));
  table_.add_cell(static_cast<long long>(sample.cumulative.cycles));
  for (const MetricDesc& metric : registry_.metrics()) {
    if (!metric.time_resolved) continue;
    if (metric.kind == MetricKind::Counter) {
      table_.add_cell(static_cast<long long>(metric.value(delta)));
    } else {
      table_.add_cell(metric.value(delta), 6);
    }
  }
}

void CsvMetricSink::on_run_complete(const MetricRunContext& context,
                                    const SimResult& result) {
  // CSV carries the interval series only; whole-run numbers live in the
  // result store / --json output.
  (void)context;
  (void)result;
}

std::string CsvMetricSink::describe() const { return "csv:" + path_; }

std::string CsvMetricSink::render() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return table_.render_csv();
}

void CsvMetricSink::flush() {
  if (path_.empty()) return;
  {
    // Nothing sampled: leave the target alone rather than overwriting a
    // previously collected series with a header-only document.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (table_.num_rows() == 0) return;
  }
  const std::string document = render();
  std::FILE* file = std::fopen(path_.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "[metrics] cannot write %s\n", path_.c_str());
    return;
  }
  std::fwrite(document.data(), 1, document.size(), file);
  std::fclose(file);
}

// ---- factory ----------------------------------------------------------

std::optional<MetricSinkKind> parse_metric_sink_kind(std::string_view name) {
  if (name == "memory") return MetricSinkKind::Memory;
  if (name == "jsonl") return MetricSinkKind::JsonLines;
  if (name == "csv") return MetricSinkKind::Csv;
  return std::nullopt;
}

std::string_view metric_sink_kind_name(MetricSinkKind kind) {
  switch (kind) {
    case MetricSinkKind::Memory: return "memory";
    case MetricSinkKind::JsonLines: return "jsonl";
    case MetricSinkKind::Csv: return "csv";
  }
  RINGCLU_UNREACHABLE("bad MetricSinkKind");
}

std::optional<std::pair<MetricSinkKind, std::string>> parse_metric_sink_spec(
    std::string_view spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const std::optional<MetricSinkKind> kind =
      parse_metric_sink_kind(spec.substr(0, colon));
  const std::string path(spec.substr(colon + 1));
  if (!kind || path.empty() || *kind == MetricSinkKind::Memory) {
    return std::nullopt;
  }
  return std::make_pair(*kind, path);
}

std::unique_ptr<MetricSink> make_metric_sink(MetricSinkKind kind,
                                             const std::string& path) {
  switch (kind) {
    case MetricSinkKind::Memory: return std::make_unique<MemoryMetricSink>();
    case MetricSinkKind::JsonLines:
      return std::make_unique<JsonLinesMetricSink>(path);
    case MetricSinkKind::Csv: return std::make_unique<CsvMetricSink>(path);
  }
  RINGCLU_UNREACHABLE("bad MetricSinkKind");
}

}  // namespace ringclu
