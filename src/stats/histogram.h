#pragma once

/// \file histogram.h
/// Small integer-bucket histogram plus a running-mean accumulator, used for
/// communication-distance and occupancy statistics.

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace ringclu {

/// Histogram over non-negative integer samples; samples beyond the last
/// bucket are clamped into it.
class Histogram {
 public:
  explicit Histogram(std::size_t num_buckets) : buckets_(num_buckets, 0) {
    RINGCLU_EXPECTS(num_buckets > 0);
  }

  void add(std::int64_t sample, std::uint64_t weight = 1) {
    RINGCLU_EXPECTS(sample >= 0);
    const std::size_t bucket =
        std::min<std::size_t>(static_cast<std::size_t>(sample),
                              buckets_.size() - 1);
    buckets_[bucket] += weight;
    total_weight_ += weight;
    weighted_sum_ += static_cast<std::uint64_t>(sample) * weight;
  }

  [[nodiscard]] std::uint64_t count() const { return total_weight_; }

  [[nodiscard]] std::uint64_t bucket(std::size_t index) const {
    RINGCLU_EXPECTS(index < buckets_.size());
    return buckets_[index];
  }

  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }

  [[nodiscard]] double mean() const {
    return total_weight_ == 0
               ? 0.0
               : static_cast<double>(weighted_sum_) /
                     static_cast<double>(total_weight_);
  }

  /// Smallest sample value v such that at least `fraction` of the weight is
  /// at buckets <= v.  \pre 0 < fraction <= 1.
  [[nodiscard]] std::int64_t percentile(double fraction) const {
    RINGCLU_EXPECTS(fraction > 0 && fraction <= 1);
    if (total_weight_ == 0) return 0;
    const double threshold = fraction * static_cast<double>(total_weight_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (static_cast<double>(seen) >= threshold) {
        return static_cast<std::int64_t>(i);
      }
    }
    return static_cast<std::int64_t>(buckets_.size() - 1);
  }

  void reset() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_weight_ = 0;
    weighted_sum_ = 0;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_weight_ = 0;
  std::uint64_t weighted_sum_ = 0;
};

/// Streaming mean over double samples.
class RunningMean {
 public:
  void add(double sample, double weight = 1.0) {
    sum_ += sample * weight;
    weight_ += weight;
  }

  [[nodiscard]] double mean() const {
    return weight_ == 0 ? 0.0 : sum_ / weight_;
  }

  [[nodiscard]] double total() const { return sum_; }
  [[nodiscard]] double weight() const { return weight_; }

  void reset() { sum_ = weight_ = 0; }

 private:
  double sum_ = 0;
  double weight_ = 0;
};

}  // namespace ringclu
