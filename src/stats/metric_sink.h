#pragma once

/// \file metric_sink.h
/// Pluggable consumers for time-resolved metric streams.
///
/// A MetricSink receives every IntervalSample a sampled run produces plus
/// one end-of-run record, each tagged with the run's identity
/// (MetricRunContext).  One sink instance may serve many concurrent runs —
/// SimService workers stream into the sink attached to their SimJob from
/// worker threads — so implementations are thread-safe and records from
/// different runs may interleave (records of one run stay in order; the
/// context fields disambiguate).
///
/// Three backends ship today:
///   jsonl    one self-describing JSON object per line (interval records
///            via interval_to_json, run records via result_to_json),
///            appended to a file or stdout.  The streaming interchange
///            format for dashboards and remote consumers.
///   csv      interval rows accumulated into a TextTable, rendered as
///            RFC-4180 CSV by flush()/destructor.
///   memory   in-process record buffer with accessors, for tests and
///            embedded consumers.
///
/// See DESIGN.md §8.

#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/sim_observer.h"
#include "core/sim_result.h"
#include "stats/metrics.h"
#include "stats/table.h"

namespace ringclu {

/// Receives the metric stream of sampled runs.  All methods are
/// thread-safe; calls for one run arrive in order on one thread.
class MetricSink {
 public:
  virtual ~MetricSink() = default;

  /// One interval of one run.
  virtual void on_interval(const MetricRunContext& context,
                           const IntervalSample& sample) = 0;

  /// The finished run the preceding intervals belong to.
  virtual void on_run_complete(const MetricRunContext& context,
                               const SimResult& result) = 0;

  /// Human-readable backend description for logs.
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// In-process buffer: every record kept, with accessors for tests and
/// embedded consumers.
class MemoryMetricSink final : public MetricSink {
 public:
  struct IntervalRecord {
    MetricRunContext context;
    IntervalSample sample;
  };
  struct RunRecord {
    MetricRunContext context;
    SimResult result;
  };

  void on_interval(const MetricRunContext& context,
                   const IntervalSample& sample) override;
  void on_run_complete(const MetricRunContext& context,
                       const SimResult& result) override;
  [[nodiscard]] std::string describe() const override { return "memory"; }

  [[nodiscard]] std::vector<IntervalRecord> intervals() const;
  [[nodiscard]] std::vector<RunRecord> runs() const;
  /// Intervals of one (config, benchmark) run, in emission order.
  [[nodiscard]] std::vector<IntervalSample> intervals_for(
      std::string_view config_name, std::string_view benchmark) const;

 private:
  mutable std::mutex mutex_;
  std::vector<IntervalRecord> intervals_;
  std::vector<RunRecord> runs_;
};

/// JSON Lines: one record per line, streamed as produced.  Writes go to
/// an owned file (append mode) or to stdout when constructed without a
/// path.  Each line is flushed immediately so concurrent readers (and
/// crashed runs) see complete records.
class JsonLinesMetricSink final : public MetricSink {
 public:
  /// Appends to \p path (parent directory must exist; "-" means stdout).
  /// Aborts if the file cannot be opened.
  explicit JsonLinesMetricSink(
      const std::string& path,
      const MetricsRegistry& registry = MetricsRegistry::builtin());
  ~JsonLinesMetricSink() override;

  void on_interval(const MetricRunContext& context,
                   const IntervalSample& sample) override;
  void on_run_complete(const MetricRunContext& context,
                       const SimResult& result) override;
  [[nodiscard]] std::string describe() const override;

 private:
  void write_line(const std::string& line);

  const MetricsRegistry& registry_;
  std::string path_;
  std::FILE* file_ = nullptr;  ///< nullptr -> stdout
  std::mutex mutex_;
};

/// CSV via TextTable: one row per interval (run identity, interval
/// bounds, then every time-resolved registry metric evaluated on the
/// delta).  Rows accumulate in memory; flush() (or the destructor)
/// renders the RFC-4180 table to the path given at construction.
class CsvMetricSink final : public MetricSink {
 public:
  explicit CsvMetricSink(
      std::string path,
      const MetricsRegistry& registry = MetricsRegistry::builtin());
  ~CsvMetricSink() override;

  void on_interval(const MetricRunContext& context,
                   const IntervalSample& sample) override;
  void on_run_complete(const MetricRunContext& context,
                       const SimResult& result) override;
  [[nodiscard]] std::string describe() const override;

  /// Renders all rows so far to the configured path (overwrite).  Called
  /// automatically on destruction; idempotent.
  void flush();

  /// The CSV document so far (tests; callers that skip the file).
  [[nodiscard]] std::string render() const;

 private:
  const MetricsRegistry& registry_;
  std::string path_;
  mutable std::mutex mutex_;
  TextTable table_;
};

enum class MetricSinkKind { Memory, JsonLines, Csv };

/// "memory" | "jsonl" | "csv" -> kind; nullopt on anything else.
[[nodiscard]] std::optional<MetricSinkKind> parse_metric_sink_kind(
    std::string_view name);
[[nodiscard]] std::string_view metric_sink_kind_name(MetricSinkKind kind);

/// Builds a sink.  \p path is the output file (jsonl/csv; "-" means
/// stdout for jsonl) and is ignored for memory.
[[nodiscard]] std::unique_ptr<MetricSink> make_metric_sink(
    MetricSinkKind kind, const std::string& path);

/// Parses a "<kind>:<path>" sink spec (the RINGCLU_METRICS format), e.g.
/// "jsonl:metrics.jsonl" or "csv:metrics.csv".  The memory kind is
/// rejected here: a spec names an output something else can read.
[[nodiscard]] std::optional<std::pair<MetricSinkKind, std::string>>
parse_metric_sink_spec(std::string_view spec);

}  // namespace ringclu
