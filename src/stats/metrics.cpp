#include "stats/metrics.h"

#include <algorithm>

#include "util/assert.h"
#include "util/json.h"

namespace ringclu {

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Ratio: return "ratio";
  }
  RINGCLU_UNREACHABLE("bad MetricKind");
}

void MetricsRegistry::add(MetricDesc metric) {
  RINGCLU_EXPECTS(!metric.name.empty());
  RINGCLU_EXPECTS(metric.value != nullptr);
  const bool unique =
      index_.emplace(metric.name, metrics_.size()).second;
  RINGCLU_EXPECTS(unique && "duplicate metric name");
  metrics_.push_back(std::move(metric));
}

const MetricDesc* MetricsRegistry::try_find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &metrics_[it->second];
}

const MetricDesc& MetricsRegistry::at(std::string_view name) const {
  const MetricDesc* metric = try_find(name);
  RINGCLU_EXPECTS(metric != nullptr && "unknown metric name");
  return *metric;
}

void GaugeRegistry::add(GaugeDesc gauge) {
  RINGCLU_EXPECTS(!gauge.name.empty());
  RINGCLU_EXPECTS(gauge.value != nullptr);
  const bool unique = index_.emplace(gauge.name, gauges_.size()).second;
  RINGCLU_EXPECTS(unique && "duplicate gauge name");
  gauges_.push_back(std::move(gauge));
}

const GaugeDesc* GaugeRegistry::try_find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &gauges_[it->second];
}

std::string GaugeRegistry::sample_to_json() const {
  JsonWriter json;
  json.begin_object();
  for (const GaugeDesc& gauge : gauges_) {
    json.key(gauge.name).value(gauge.value());
  }
  json.end_object();
  return json.str();
}

namespace {

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

/// Largest / smallest per-cluster dispatch share (0 when nothing
/// dispatched).  Shares are computed from the counters so the metric also
/// works on interval deltas.
double dispatch_share_extreme(const SimCounters& counters, bool want_max) {
  std::uint64_t total = 0;
  for (const std::uint64_t count : counters.dispatched_per_cluster) {
    total += count;
  }
  if (total == 0 || counters.dispatched_per_cluster.empty()) return 0.0;
  std::uint64_t extreme = counters.dispatched_per_cluster.front();
  for (const std::uint64_t count : counters.dispatched_per_cluster) {
    extreme = want_max ? std::max(extreme, count) : std::min(extreme, count);
  }
  return ratio(extreme, total);
}

/// Registers one raw SimCounters field as a counter metric.
void add_counter(MetricsRegistry& registry, std::string name,
                 std::uint64_t SimCounters::*field, std::string description,
                 std::string figure = "") {
  MetricDesc metric;
  metric.name = std::move(name);
  metric.unit = "count";
  metric.description = std::move(description);
  metric.figure = std::move(figure);
  metric.kind = MetricKind::Counter;
  metric.value = [field](const SimResult& result) {
    return static_cast<double>(result.counters.*field);
  };
  registry.add(std::move(metric));
}

/// Registers a derived ratio metric.
void add_ratio(MetricsRegistry& registry, std::string name, std::string unit,
               std::string description, std::string figure,
               std::function<double(const SimResult&)> value,
               bool time_resolved = true) {
  MetricDesc metric;
  metric.name = std::move(name);
  metric.unit = std::move(unit);
  metric.description = std::move(description);
  metric.figure = std::move(figure);
  metric.kind = MetricKind::Ratio;
  metric.time_resolved = time_resolved;
  metric.value = std::move(value);
  registry.add(std::move(metric));
}

}  // namespace

MetricsRegistry MetricsRegistry::make_builtin() {
  MetricsRegistry reg;

  // Raw counters: every SimCounters field, one view each.
  add_counter(reg, "cycles", &SimCounters::cycles, "measured cycles");
  add_counter(reg, "committed", &SimCounters::committed,
              "committed instructions");
  add_counter(reg, "comms", &SimCounters::comms,
              "inter-cluster communications", "fig07");
  add_counter(reg, "comm_distance_sum", &SimCounters::comm_distance_sum,
              "summed hop distance over all communications", "fig08");
  add_counter(reg, "comm_contention_sum", &SimCounters::comm_contention_sum,
              "summed bus-contention delay over all communications", "fig09");
  add_counter(reg, "nready_sum", &SimCounters::nready_sum,
              "summed NREADY matching per cycle", "fig10");
  add_counter(reg, "branches", &SimCounters::branches, "conditional branches");
  add_counter(reg, "mispredicts", &SimCounters::mispredicts,
              "branch mispredictions");
  add_counter(reg, "icache_stall_cycles", &SimCounters::icache_stall_cycles,
              "cycles fetch stalled on the instruction cache");
  add_counter(reg, "loads", &SimCounters::loads, "committed loads");
  add_counter(reg, "stores", &SimCounters::stores, "committed stores");
  add_counter(reg, "load_forwards", &SimCounters::load_forwards,
              "loads satisfied by store-to-load forwarding");
  add_counter(reg, "l1d_accesses", &SimCounters::l1d_accesses,
              "L1 data-cache accesses");
  add_counter(reg, "l1d_misses", &SimCounters::l1d_misses,
              "L1 data-cache misses");
  add_counter(reg, "l2_accesses", &SimCounters::l2_accesses, "L2 accesses");
  add_counter(reg, "l2_misses", &SimCounters::l2_misses, "L2 misses");
  add_counter(reg, "steer_stall_cycles", &SimCounters::steer_stall_cycles,
              "cycles dispatch stalled on steering");
  add_counter(reg, "rob_stall_cycles", &SimCounters::rob_stall_cycles,
              "cycles dispatch stalled on a full ROB");
  add_counter(reg, "lsq_stall_cycles", &SimCounters::lsq_stall_cycles,
              "cycles dispatch stalled on a full LSQ");
  add_counter(reg, "copy_evictions", &SimCounters::copy_evictions,
              "register copies evicted to free physical registers");
  add_counter(reg, "rob_occupancy_sum", &SimCounters::rob_occupancy_sum,
              "summed ROB occupancy per cycle");
  add_counter(reg, "regs_in_use_sum", &SimCounters::regs_in_use_sum,
              "summed physical registers in use per cycle");

  // Derived ratios: the figure series.
  add_ratio(reg, "ipc", "instr/cycle", "committed instructions per cycle",
            "fig06", [](const SimResult& r) { return r.ipc(); });
  add_ratio(reg, "comms_per_instr", "comm/instr",
            "inter-cluster communications per committed instruction", "fig07",
            [](const SimResult& r) { return r.comms_per_instr(); });
  add_ratio(reg, "avg_comm_distance", "hops",
            "average hop distance per communication", "fig08",
            [](const SimResult& r) { return r.avg_comm_distance(); });
  add_ratio(reg, "avg_comm_contention", "cycles",
            "average bus-contention delay per communication", "fig09",
            [](const SimResult& r) { return r.avg_comm_contention(); });
  add_ratio(reg, "nready_avg", "instr/cycle",
            "average ready-but-misplaced instructions per cycle (workload "
            "imbalance)",
            "fig10",
            [](const SimResult& r) { return r.nready_avg(); });
  add_ratio(reg, "mispredict_rate", "fraction",
            "mispredicted fraction of conditional branches", "",
            [](const SimResult& r) { return r.mispredict_rate(); });
  add_ratio(reg, "avg_rob_occupancy", "entries", "average ROB occupancy", "",
            [](const SimResult& r) { return r.avg_rob_occupancy(); });
  add_ratio(reg, "avg_regs_in_use", "regs",
            "average physical registers in use", "",
            [](const SimResult& r) {
              return ratio(r.counters.regs_in_use_sum, r.counters.cycles);
            });
  add_ratio(reg, "l1d_miss_rate", "fraction", "L1 data-cache miss rate", "",
            [](const SimResult& r) {
              return ratio(r.counters.l1d_misses, r.counters.l1d_accesses);
            });
  add_ratio(reg, "l2_miss_rate", "fraction", "L2 miss rate", "",
            [](const SimResult& r) {
              return ratio(r.counters.l2_misses, r.counters.l2_accesses);
            });
  add_ratio(reg, "load_forward_rate", "fraction",
            "fraction of loads satisfied by store-to-load forwarding", "",
            [](const SimResult& r) {
              return ratio(r.counters.load_forwards, r.counters.loads);
            });
  add_ratio(reg, "steer_stall_frac", "fraction",
            "fraction of cycles dispatch stalled on steering", "",
            [](const SimResult& r) {
              return ratio(r.counters.steer_stall_cycles, r.counters.cycles);
            });
  add_ratio(reg, "rob_stall_frac", "fraction",
            "fraction of cycles dispatch stalled on a full ROB", "",
            [](const SimResult& r) {
              return ratio(r.counters.rob_stall_cycles, r.counters.cycles);
            });
  add_ratio(reg, "lsq_stall_frac", "fraction",
            "fraction of cycles dispatch stalled on a full LSQ", "",
            [](const SimResult& r) {
              return ratio(r.counters.lsq_stall_cycles, r.counters.cycles);
            });
  add_ratio(reg, "icache_stall_frac", "fraction",
            "fraction of cycles fetch stalled on the instruction cache", "",
            [](const SimResult& r) {
              return ratio(r.counters.icache_stall_cycles, r.counters.cycles);
            });
  add_ratio(reg, "dispatch_share_max", "fraction",
            "largest per-cluster share of dispatched instructions", "fig11",
            [](const SimResult& r) {
              return dispatch_share_extreme(r.counters, /*want_max=*/true);
            });
  add_ratio(reg, "dispatch_share_min", "fraction",
            "smallest per-cluster share of dispatched instructions", "fig11",
            [](const SimResult& r) {
              return dispatch_share_extreme(r.counters, /*want_max=*/false);
            });

  // Host-side simulator throughput: whole-run only (wall clock is not
  // sampled per interval and is outside the determinism contract).
  add_ratio(reg, "sim_instrs_per_second", "instr/s",
            "simulated instructions per host wall-clock second", "",
            [](const SimResult& r) { return r.sim_instrs_per_second(); },
            /*time_resolved=*/false);

  return reg;
}

const MetricsRegistry& MetricsRegistry::builtin() {
  static const MetricsRegistry registry = make_builtin();
  return registry;
}

namespace {

/// Emits the raw-counter block common to result and interval records.
void write_counters(JsonWriter& json, const SimCounters& counters) {
  json.key("counters").begin_object();
  json.key("cycles").value(counters.cycles);
  json.key("committed").value(counters.committed);
  json.key("comms").value(counters.comms);
  json.key("comm_distance_sum").value(counters.comm_distance_sum);
  json.key("comm_contention_sum").value(counters.comm_contention_sum);
  json.key("nready_sum").value(counters.nready_sum);
  json.key("branches").value(counters.branches);
  json.key("mispredicts").value(counters.mispredicts);
  json.key("icache_stall_cycles").value(counters.icache_stall_cycles);
  json.key("loads").value(counters.loads);
  json.key("stores").value(counters.stores);
  json.key("load_forwards").value(counters.load_forwards);
  json.key("l1d_accesses").value(counters.l1d_accesses);
  json.key("l1d_misses").value(counters.l1d_misses);
  json.key("l2_accesses").value(counters.l2_accesses);
  json.key("l2_misses").value(counters.l2_misses);
  json.key("steer_stall_cycles").value(counters.steer_stall_cycles);
  json.key("rob_stall_cycles").value(counters.rob_stall_cycles);
  json.key("lsq_stall_cycles").value(counters.lsq_stall_cycles);
  json.key("copy_evictions").value(counters.copy_evictions);
  json.key("rob_occupancy_sum").value(counters.rob_occupancy_sum);
  json.key("regs_in_use_sum").value(counters.regs_in_use_sum);
  json.key("dispatched_per_cluster").begin_array();
  for (const std::uint64_t count : counters.dispatched_per_cluster) {
    json.value(count);
  }
  json.end_array();
  json.end_object();
}

}  // namespace

std::string result_to_json(const SimResult& result,
                           const MetricsRegistry& registry) {
  JsonWriter json;
  json.begin_object();
  json.key("type").value("result");
  json.key("schema_version").value(kSimSchemaVersion);
  json.key("config").value(result.config_name);
  json.key("benchmark").value(result.benchmark);
  write_counters(json, result.counters);
  json.key("metrics").begin_object();
  for (const MetricDesc& metric : registry.metrics()) {
    json.key(metric.name).value(metric.value(result));
  }
  json.end_object();
  json.key("dispatch_shares").begin_array();
  for (std::size_t c = 0; c < result.counters.dispatched_per_cluster.size();
       ++c) {
    json.value(result.dispatch_share(static_cast<int>(c)));
  }
  json.end_array();
  json.key("host").begin_object();
  json.key("wall_seconds").value(result.wall_seconds);
  json.key("total_committed").value(result.total_committed);
  json.end_object();
  json.end_object();
  return json.str();
}

std::string interval_to_json(const MetricRunContext& context,
                             const IntervalSample& sample,
                             const MetricsRegistry& registry) {
  // Registry metrics are views over SimResult; evaluate them on a
  // result-shaped wrapper around the interval delta.
  SimResult delta;
  delta.config_name = context.config_name;
  delta.benchmark = context.benchmark;
  delta.counters = sample.delta;

  JsonWriter json;
  json.begin_object();
  json.key("type").value("interval");
  json.key("config").value(context.config_name);
  json.key("benchmark").value(context.benchmark);
  json.key("seed").value(context.seed);
  json.key("interval_instrs").value(sample.interval_instrs);
  json.key("index").value(sample.index);
  json.key("final").value(sample.final_sample);
  json.key("cumulative_committed").value(sample.cumulative.committed);
  json.key("cumulative_cycles").value(sample.cumulative.cycles);
  write_counters(json, sample.delta);
  json.key("metrics").begin_object();
  for (const MetricDesc& metric : registry.metrics()) {
    if (!metric.time_resolved) continue;
    json.key(metric.name).value(metric.value(delta));
  }
  json.end_object();
  json.end_object();
  return json.str();
}

}  // namespace ringclu
