#include "stats/table.h"

#include "util/assert.h"
#include "util/format.h"

namespace ringclu {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RINGCLU_EXPECTS(!headers_.empty());
}

void TextTable::begin_row() {
  if (!rows_.empty()) {
    RINGCLU_EXPECTS(rows_.back().size() == headers_.size());
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
}

void TextTable::add_cell(std::string_view text) {
  RINGCLU_EXPECTS(!rows_.empty() && rows_.back().size() < headers_.size());
  rows_.back().emplace_back(text);
}

void TextTable::add_cell(double value, int decimals) {
  add_cell(str_format("%.*f", decimals, value));
}

void TextTable::add_cell(long long value) {
  add_cell(std::to_string(value));
}

std::string TextTable::render_aligned() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    RINGCLU_EXPECTS(row.size() == headers_.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += pad_right(headers_[c], widths[c]);
    out += (c + 1 < headers_.size()) ? "  " : "";
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c], '-');
    out += (c + 1 < headers_.size()) ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad_right(row[c], widths[c]);
      out += (c + 1 < row.size()) ? "  " : "";
    }
    out += '\n';
  }
  return out;
}

namespace {

/// RFC-4180 field encoding: quote when the cell contains a comma, a
/// double quote or a line break, doubling embedded quotes.
std::string csv_field(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string csv_row(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c != 0) out += ',';
    out += csv_field(cells[c]);
  }
  out += '\n';
  return out;
}

}  // namespace

std::string TextTable::render_csv() const {
  std::string out = csv_row(headers_);
  for (const auto& row : rows_) {
    RINGCLU_EXPECTS(row.size() == headers_.size());
    out += csv_row(row);
  }
  return out;
}

std::string TextTable::render_markdown() const {
  std::string out = "| " + join(headers_, " | ") + " |\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += '\n';
  for (const auto& row : rows_) {
    RINGCLU_EXPECTS(row.size() == headers_.size());
    out += "| " + join(row, " | ") + " |\n";
  }
  return out;
}

}  // namespace ringclu
