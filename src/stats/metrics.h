#pragma once

/// \file metrics.h
/// The metrics registry: the public instrumentation surface of the
/// simulator.
///
/// Every number the paper's figures plot — and every raw counter behind
/// them — is registered here as a typed, named MetricDesc with a unit, a
/// description and the figure it feeds.  A metric is a *view* bound onto
/// SimResult/SimCounters: evaluating one never touches the Processor hot
/// path, so new figures, sweep dashboards and streaming consumers plug in
/// by registry lookup instead of editing core structs.
///
/// Three layers build on this registry:
///   - report.h aggregation (group_mean by metric name),
///   - the MetricSink backends (metric_sink.h) streaming per-interval
///     series sampled by a SimObserver (core/sim_observer.h),
///   - the machine-readable CLI outputs (ringclu_sim --json and the
///     --matrix json= JSON Lines stream), built by result_to_json /
///     interval_to_json below.
///
/// See DESIGN.md §8.

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/sim_observer.h"
#include "core/sim_result.h"

namespace ringclu {

/// What a metric measures.
enum class MetricKind {
  Counter,  ///< raw event count accumulated over the measurement window
  Ratio,    ///< derived value (quotient of counters, share, average)
};

[[nodiscard]] std::string_view metric_kind_name(MetricKind kind);

/// One named, typed, documented metric bound onto SimResult.
struct MetricDesc {
  std::string name;         ///< registry key, e.g. "ipc"
  std::string unit;         ///< e.g. "instr/cycle", "count", "fraction"
  std::string description;  ///< one-line human description
  std::string figure;       ///< paper figure/table tag ("fig07"), "" if none
  MetricKind kind = MetricKind::Ratio;
  /// True when the metric is meaningful evaluated on an interval delta;
  /// false for host-side values (wall-clock throughput) that only exist
  /// for a whole run.
  bool time_resolved = true;
  std::function<double(const SimResult&)> value;
};

/// An ordered collection of uniquely named metrics.  The built-in
/// registry covers every SimCounters field and every derived ratio the
/// figures use; extensions copy it and add their own views.
class MetricsRegistry {
 public:
  /// Registers \p metric.  \pre the name is non-empty and not yet taken,
  /// and the value function is set.
  void add(MetricDesc metric);

  /// Lookup by name; nullptr when unknown.
  [[nodiscard]] const MetricDesc* try_find(std::string_view name) const;

  /// Lookup by name.  \pre the metric exists.
  [[nodiscard]] const MetricDesc& at(std::string_view name) const;

  /// All metrics in registration order.
  [[nodiscard]] std::span<const MetricDesc> metrics() const {
    return metrics_;
  }

  [[nodiscard]] std::size_t size() const { return metrics_.size(); }

  /// The process-wide registry of built-in metrics (immutable).
  [[nodiscard]] static const MetricsRegistry& builtin();

  /// A fresh registry pre-populated with the built-in metrics, for
  /// callers that want to register additional views.
  [[nodiscard]] static MetricsRegistry make_builtin();

 private:
  std::vector<MetricDesc> metrics_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

/// A live server-side gauge: a named, documented value sampled at read
/// time (queue depth, in-flight jobs, aggregate throughput).  The
/// operational sibling of MetricDesc — a MetricDesc is a view over one
/// finished SimResult, a GaugeDesc is a view over a running process.
/// ringclu_simd registers its service/scheduler/journal gauges here and
/// serves the sampled registry as GET /v1/server/metrics.
struct GaugeDesc {
  std::string name;         ///< registry key, e.g. "queue_depth_high"
  std::string unit;         ///< e.g. "jobs", "count", "instr/s"
  std::string description;  ///< one-line human description
  std::function<double()> value;
};

/// An ordered collection of uniquely named gauges.
class GaugeRegistry {
 public:
  /// Registers \p gauge.  \pre the name is non-empty and not yet taken,
  /// and the value function is set.
  void add(GaugeDesc gauge);

  /// Lookup by name; nullptr when unknown.
  [[nodiscard]] const GaugeDesc* try_find(std::string_view name) const;

  /// All gauges in registration order.
  [[nodiscard]] std::span<const GaugeDesc> gauges() const { return gauges_; }

  [[nodiscard]] std::size_t size() const { return gauges_.size(); }

  /// Samples every gauge now and renders one JSON object,
  /// {"<name>": <value>, ...} in registration order.  Values pass through
  /// json_number (NaN/Inf map to 0).
  [[nodiscard]] std::string sample_to_json() const;

 private:
  std::vector<GaugeDesc> gauges_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

/// Identifies the run a metric record belongs to (threaded to sinks).
struct MetricRunContext {
  std::string config_name;
  std::string benchmark;
  std::uint64_t interval_instrs = 0;  ///< sampling period, 0 when off
  std::uint64_t seed = 0;
};

/// Full machine-readable report of one finished run: config/benchmark
/// identity, schema version, raw counters, every registry metric, the
/// per-cluster dispatch shares and the host-side throughput block.  One
/// JSON object, no trailing newline.  This is exactly what
/// `ringclu_sim --json` prints (pinned by a parse round-trip test).
[[nodiscard]] std::string result_to_json(
    const SimResult& result,
    const MetricsRegistry& registry = MetricsRegistry::builtin());

/// One JSON Lines record for an interval sample: run identity, interval
/// index/bounds, the delta counters and every time-resolved registry
/// metric evaluated on the delta.  One JSON object, no trailing newline.
[[nodiscard]] std::string interval_to_json(
    const MetricRunContext& context, const IntervalSample& sample,
    const MetricsRegistry& registry = MetricsRegistry::builtin());

}  // namespace ringclu
