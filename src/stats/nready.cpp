#include "stats/nready.h"

#include <algorithm>

#include "util/assert.h"

namespace ringclu {

std::uint64_t nready_matching(std::span<const std::uint32_t> unissued_ready,
                              std::span<const std::uint32_t> idle_slots) {
  RINGCLU_EXPECTS(unissued_ready.size() == idle_slots.size());
  const std::size_t n = unissued_ready.size();
  if (n <= 1) return 0;  // a single cluster can never re-home work

  // Transportation problem on the complete bipartite cluster graph minus
  // the diagonal.  The max-flow min-cut value has a closed form: besides
  // the trivial cuts (all demand, all supply), the only binding cuts are
  // per-cluster ones — cluster i's demand can only use foreign supply and
  // vice versa, so flow <= (SD - d_i) + (SS - s_i).  Verified against
  // brute-force enumeration in tests.
  std::uint64_t total_demand = 0;
  std::uint64_t total_supply = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total_demand += unissued_ready[i];
    total_supply += idle_slots[i];
  }
  std::uint64_t best = std::min(total_demand, total_supply);
  for (std::size_t i = 0; i < n; ++i) {
    best = std::min(best, (total_demand - unissued_ready[i]) +
                              (total_supply - idle_slots[i]));
  }
  return best;
}

}  // namespace ringclu
