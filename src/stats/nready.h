#pragma once

/// \file nready.h
/// The NREADY workload-imbalance figure (Parcerisa & González; used in
/// Figures 10 and 14 of the paper): per cycle, the number of ready
/// instructions that were not issued because their cluster's issue width was
/// exhausted but that *could* have issued in a different cluster with an
/// idle slot.

#include <cstdint>
#include <span>

namespace ringclu {

/// Computes the per-cycle NREADY contribution for one instruction type.
///
/// \param unissued_ready  per-cluster count of ready-but-not-issued
///                        instructions of this type this cycle.
/// \param idle_slots      per-cluster count of unused issue slots (with a
///                        free functional unit) of this type this cycle.
/// \return the maximum number of (instruction, slot) pairings with the
///         instruction and slot in *different* clusters.
///
/// This is a transportation problem on the complete bipartite cluster graph
/// minus the diagonal; its max-flow has the closed form
/// min(total demand, total supply, min_i (foreign demand + foreign supply))
/// (verified against brute force in tests).
[[nodiscard]] std::uint64_t nready_matching(
    std::span<const std::uint32_t> unissued_ready,
    std::span<const std::uint32_t> idle_slots);

}  // namespace ringclu
