#pragma once

/// \file lsq.h
/// Load/store queue (128 entries per Table 2).  Entries are allocated in
/// program order at dispatch.  Loads may access memory once every older
/// store has a known address and no older store overlaps (exact-match
/// store-to-load forwarding is supported); this is conservative, in the
/// style of SimpleScalar's in-order disambiguation, and identical for the
/// Ring and Conv machines.

#include <cstdint>
#include <deque>
#include <optional>

#include "util/assert.h"

namespace ringclu {

class CheckpointReader;
class CheckpointWriter;

/// Result of asking whether a load may proceed.
enum class LoadGate : std::uint8_t {
  Proceed,     ///< no conflicting older store; access the cache
  Forward,     ///< an older store to the exact same address supplies the data
  MustWait,    ///< an older store overlaps partially or has an unknown address
};

/// The load/store queue.
class LoadStoreQueue {
 public:
  explicit LoadStoreQueue(std::size_t capacity = 128);

  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Allocates an entry at dispatch (program order).  \pre !full().
  void allocate(std::uint64_t seq, bool is_store);

  /// Records the effective address once address generation completes.
  void set_address(std::uint64_t seq, std::uint64_t addr, std::uint32_t size);

  /// Checks whether the load \p seq (whose address must be set) may proceed.
  [[nodiscard]] LoadGate query_load(std::uint64_t seq) const;

  /// Removes the entry at commit.  Entries must be released in program
  /// order.  Returns true if the released entry was a store (the caller
  /// then charges a cache write).
  bool release(std::uint64_t seq);

  /// Statistics.
  [[nodiscard]] std::uint64_t forwards() const { return forwards_; }
  [[nodiscard]] std::uint64_t load_waits() const { return load_waits_; }
  void count_forward() { ++forwards_; }
  void count_load_wait() { ++load_waits_; }

  void save_state(CheckpointWriter& out) const;
  void restore_state(CheckpointReader& in);

 private:
  struct Entry {
    std::uint64_t seq = 0;
    std::uint64_t addr = 0;
    std::uint32_t size = 0;
    bool is_store = false;
    bool addr_known = false;
    // MustWait memoization for loads: the disambiguation scan stops at the
    // youngest older store that blocks (unknown address or partial
    // overlap), and its result cannot change while that store is still
    // present with the same address-known state — older entries are never
    // inserted, addresses only become known, and releases are oldest-first.
    // A gated load retrying every cycle therefore revalidates its blocker
    // in O(log n) instead of rescanning.  (Proceed/Forward are terminal:
    // the load accesses memory the same cycle, so they are never re-asked.)
    mutable bool must_wait_memo = false;
    mutable std::uint64_t blocker_seq = 0;
    mutable bool blocker_addr_known = false;
  };

  /// Position of \p seq in entries_ (binary search; entries are seq-sorted
  /// because allocation is in program order), or entries_.size().
  [[nodiscard]] std::size_t find_index(std::uint64_t seq) const;

  std::size_t capacity_;  // ckpt: derived (config; checked on restore)
  std::deque<Entry> entries_;  // program order: front is oldest
  std::uint64_t forwards_ = 0;
  std::uint64_t load_waits_ = 0;
};

}  // namespace ringclu
