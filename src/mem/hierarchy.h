#pragma once

/// \file hierarchy.h
/// Two-level cache hierarchy with the latencies of Table 2:
/// L1I 64KB/2-way (1 cycle), L1D 32KB/4-way (2 cycles, 4 R/W ports),
/// unified L2 512KB/4-way (10 cycles hit, 100 cycles miss).
/// The +1 cycle each way between clusters and the centralized D-cache
/// cluster is charged by the core, not here.

#include <cstdint>

#include "mem/cache.h"

namespace ringclu {

struct MemHierarchyConfig {
  CacheConfig l1i{64 * 1024, 32, 2};
  CacheConfig l1d{32 * 1024, 32, 4};
  CacheConfig l2{512 * 1024, 64, 4};
  int l1i_latency = 1;
  int l1d_latency = 2;
  int l2_hit_latency = 10;
  int l2_miss_latency = 100;
  int l1d_ports = 4;  ///< combined read/write ports per cycle

  friend bool operator==(const MemHierarchyConfig&,
                         const MemHierarchyConfig&) = default;
};

/// Composes the caches into end-to-end access latencies.
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const MemHierarchyConfig& config = {});

  /// Data access (load or store): returns the total latency in cycles from
  /// cache-access start to data available at the cache output.
  [[nodiscard]] int data_access(std::uint64_t addr);

  /// Instruction-fetch access for the line containing \p pc.
  [[nodiscard]] int inst_access(std::uint64_t pc);

  [[nodiscard]] const SetAssocCache& l1i() const { return l1i_; }
  [[nodiscard]] const SetAssocCache& l1d() const { return l1d_; }
  [[nodiscard]] const SetAssocCache& l2() const { return l2_; }
  [[nodiscard]] const MemHierarchyConfig& config() const { return config_; }

  void reset_stats();

  void save_state(CheckpointWriter& out) const;
  void restore_state(CheckpointReader& in);

 private:
  MemHierarchyConfig config_;  // ckpt: derived (config)
  SetAssocCache l1i_;
  SetAssocCache l1d_;
  SetAssocCache l2_;
};

}  // namespace ringclu
