#include "mem/lsq.h"

namespace ringclu {
namespace {

bool ranges_overlap(std::uint64_t a, std::uint32_t a_size, std::uint64_t b,
                    std::uint32_t b_size) {
  return a < b + b_size && b < a + a_size;
}

}  // namespace

LoadStoreQueue::LoadStoreQueue(std::size_t capacity) : capacity_(capacity) {
  RINGCLU_EXPECTS(capacity > 0);
}

void LoadStoreQueue::allocate(std::uint64_t seq, bool is_store) {
  RINGCLU_EXPECTS(!full());
  RINGCLU_EXPECTS(entries_.empty() || entries_.back().seq < seq);
  entries_.push_back(Entry{seq, 0, 0, is_store, false});
}

const LoadStoreQueue::Entry* LoadStoreQueue::find(std::uint64_t seq) const {
  for (const Entry& entry : entries_) {
    if (entry.seq == seq) return &entry;
  }
  return nullptr;
}

LoadStoreQueue::Entry* LoadStoreQueue::find(std::uint64_t seq) {
  for (Entry& entry : entries_) {
    if (entry.seq == seq) return &entry;
  }
  return nullptr;
}

void LoadStoreQueue::set_address(std::uint64_t seq, std::uint64_t addr,
                                 std::uint32_t size) {
  Entry* entry = find(seq);
  RINGCLU_EXPECTS(entry != nullptr);
  entry->addr = addr;
  entry->size = size;
  entry->addr_known = true;
}

LoadGate LoadStoreQueue::query_load(std::uint64_t seq) const {
  const Entry* load = find(seq);
  RINGCLU_EXPECTS(load != nullptr && !load->is_store && load->addr_known);

  // Scan older stores from youngest to oldest; the youngest matching store
  // is the forwarding candidate.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->seq >= seq || !it->is_store) continue;
    if (!it->addr_known) return LoadGate::MustWait;
    if (it->addr == load->addr && it->size >= load->size) {
      return LoadGate::Forward;
    }
    if (ranges_overlap(it->addr, it->size, load->addr, load->size)) {
      return LoadGate::MustWait;  // partial overlap: wait for the store
    }
  }
  return LoadGate::Proceed;
}

bool LoadStoreQueue::release(std::uint64_t seq) {
  RINGCLU_EXPECTS(!entries_.empty());
  RINGCLU_EXPECTS(entries_.front().seq == seq);
  const bool was_store = entries_.front().is_store;
  entries_.pop_front();
  return was_store;
}

}  // namespace ringclu
