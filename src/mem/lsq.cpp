#include "mem/lsq.h"

#include <algorithm>

#include "core/checkpoint.h"

namespace ringclu {
namespace {

bool ranges_overlap(std::uint64_t a, std::uint32_t a_size, std::uint64_t b,
                    std::uint32_t b_size) {
  return a < b + b_size && b < a + a_size;
}

}  // namespace

LoadStoreQueue::LoadStoreQueue(std::size_t capacity) : capacity_(capacity) {
  RINGCLU_EXPECTS(capacity > 0);
}

void LoadStoreQueue::allocate(std::uint64_t seq, bool is_store) {
  RINGCLU_EXPECTS(!full());
  RINGCLU_EXPECTS(entries_.empty() || entries_.back().seq < seq);
  entries_.push_back(Entry{seq, 0, 0, is_store, false});
}

std::size_t LoadStoreQueue::find_index(std::uint64_t seq) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), seq,
      [](const Entry& entry, std::uint64_t key) { return entry.seq < key; });
  return it != entries_.end() && it->seq == seq
             ? static_cast<std::size_t>(it - entries_.begin())
             : entries_.size();
}

void LoadStoreQueue::set_address(std::uint64_t seq, std::uint64_t addr,
                                 std::uint32_t size) {
  const std::size_t index = find_index(seq);
  RINGCLU_EXPECTS(index < entries_.size());
  Entry& entry = entries_[index];
  entry.addr = addr;
  entry.size = size;
  entry.addr_known = true;
}

LoadGate LoadStoreQueue::query_load(std::uint64_t seq) const {
  const std::size_t index = find_index(seq);
  RINGCLU_EXPECTS(index < entries_.size());
  const Entry& load = entries_[index];
  RINGCLU_EXPECTS(!load.is_store && load.addr_known);

  // Fast path: still blocked by the same store in the same state.
  if (load.must_wait_memo) {
    const std::size_t blocker = find_index(load.blocker_seq);
    if (blocker < entries_.size() &&
        entries_[blocker].addr_known == load.blocker_addr_known) {
      return LoadGate::MustWait;
    }
    load.must_wait_memo = false;  // blocker changed: rescan
  }

  // Scan older stores from youngest to oldest; the youngest matching store
  // is the forwarding candidate.  Start just below the load's own slot:
  // younger entries never matter.
  for (std::size_t i = index; i-- > 0;) {
    const Entry& older = entries_[i];
    if (!older.is_store) continue;
    if (!older.addr_known) {
      load.must_wait_memo = true;
      load.blocker_seq = older.seq;
      load.blocker_addr_known = false;
      return LoadGate::MustWait;
    }
    if (older.addr == load.addr && older.size >= load.size) {
      return LoadGate::Forward;
    }
    if (ranges_overlap(older.addr, older.size, load.addr, load.size)) {
      // Partial overlap: wait for the store to retire.
      load.must_wait_memo = true;
      load.blocker_seq = older.seq;
      load.blocker_addr_known = true;
      return LoadGate::MustWait;
    }
  }
  return LoadGate::Proceed;
}

bool LoadStoreQueue::release(std::uint64_t seq) {
  RINGCLU_EXPECTS(!entries_.empty());
  RINGCLU_EXPECTS(entries_.front().seq == seq);
  const bool was_store = entries_.front().is_store;
  entries_.pop_front();
  return was_store;
}

void LoadStoreQueue::save_state(CheckpointWriter& out) const {
  out.u64(entries_.size());
  for (const Entry& entry : entries_) {
    out.u64(entry.seq);
    out.u64(entry.addr);
    out.u32(entry.size);
    out.boolean(entry.is_store);
    out.boolean(entry.addr_known);
    out.boolean(entry.must_wait_memo);
    out.u64(entry.blocker_seq);
    out.boolean(entry.blocker_addr_known);
  }
  out.u64(forwards_);
  out.u64(load_waits_);
}

void LoadStoreQueue::restore_state(CheckpointReader& in) {
  const std::uint64_t count = in.u64();
  if (!in.ok() || count > capacity_) {
    in.fail("lsq overflow in checkpoint");
    return;
  }
  entries_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry entry;
    entry.seq = in.u64();
    entry.addr = in.u64();
    entry.size = in.u32();
    entry.is_store = in.boolean();
    entry.addr_known = in.boolean();
    entry.must_wait_memo = in.boolean();
    entry.blocker_seq = in.u64();
    entry.blocker_addr_known = in.boolean();
    entries_.push_back(entry);
  }
  forwards_ = in.u64();
  load_waits_ = in.u64();
}

}  // namespace ringclu
