#include "mem/hierarchy.h"

#include "core/checkpoint.h"

namespace ringclu {

MemoryHierarchy::MemoryHierarchy(const MemHierarchyConfig& config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2) {}

int MemoryHierarchy::data_access(std::uint64_t addr) {
  int latency = config_.l1d_latency;
  if (!l1d_.access(addr)) {
    latency += l2_.access(addr) ? config_.l2_hit_latency
                                : config_.l2_hit_latency +
                                      config_.l2_miss_latency;
  }
  return latency;
}

int MemoryHierarchy::inst_access(std::uint64_t pc) {
  int latency = config_.l1i_latency;
  if (!l1i_.access(pc)) {
    latency += l2_.access(pc) ? config_.l2_hit_latency
                              : config_.l2_hit_latency +
                                    config_.l2_miss_latency;
  }
  return latency;
}

void MemoryHierarchy::reset_stats() {
  l1i_.reset_stats();
  l1d_.reset_stats();
  l2_.reset_stats();
}

void MemoryHierarchy::save_state(CheckpointWriter& out) const {
  l1i_.save_state(out);
  l1d_.save_state(out);
  l2_.save_state(out);
}

void MemoryHierarchy::restore_state(CheckpointReader& in) {
  l1i_.restore_state(in);
  l1d_.restore_state(in);
  l2_.restore_state(in);
}

}  // namespace ringclu
