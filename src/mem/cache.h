#pragma once

/// \file cache.h
/// Generic set-associative cache with LRU replacement.  The cache tracks
/// hit/miss state only; access *timing* is composed by MemoryHierarchy.

#include <cstdint>
#include <vector>

namespace ringclu {

class CheckpointReader;
class CheckpointWriter;

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;

  friend bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

/// Set-associative, write-allocate cache directory (tags only).
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& config);

  /// Performs an access: returns true on hit.  Misses allocate the line.
  bool access(std::uint64_t addr);

  /// Probe without changing state.
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  /// Invalidates everything (used between warmup samples in tests).
  void flush();

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double miss_rate() const {
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(misses_) / static_cast<double>(accesses_);
  }
  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_sets() const { return sets_; }

  void reset_stats() { accesses_ = misses_ = 0; }

  /// Serializes tags, LRU state and statistics counters.
  void save_state(CheckpointWriter& out) const;
  void restore_state(CheckpointReader& in);

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  [[nodiscard]] std::size_t set_of(std::uint64_t addr) const;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const;

  CacheConfig config_;  // ckpt: derived (config)
  std::size_t sets_;  // ckpt: derived (config geometry)
  std::uint32_t line_shift_;  // ckpt: derived (config geometry)
  std::vector<Line> lines_;
  std::uint64_t tick_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ringclu
