#include "mem/cache.h"

#include "core/checkpoint.h"
#include "util/assert.h"

namespace ringclu {
namespace {

constexpr bool is_power_of_two(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

constexpr std::uint32_t log2_u32(std::uint64_t value) {
  std::uint32_t shift = 0;
  while ((1ULL << shift) < value) ++shift;
  return shift;
}

}  // namespace

SetAssocCache::SetAssocCache(const CacheConfig& config)
    : config_(config),
      sets_(config.size_bytes / (config.line_bytes * config.ways)),
      line_shift_(log2_u32(config.line_bytes)),
      lines_(sets_ * config.ways) {
  RINGCLU_EXPECTS(is_power_of_two(config.line_bytes));
  RINGCLU_EXPECTS(config.ways > 0);
  RINGCLU_EXPECTS(config.size_bytes % (config.line_bytes * config.ways) == 0);
  RINGCLU_EXPECTS(is_power_of_two(sets_));
}

std::size_t SetAssocCache::set_of(std::uint64_t addr) const {
  return static_cast<std::size_t>(addr >> line_shift_) & (sets_ - 1);
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const {
  return (addr >> line_shift_) / sets_;
}

bool SetAssocCache::access(std::uint64_t addr) {
  ++accesses_;
  ++tick_;
  const std::size_t base = set_of(addr) * config_.ways;
  const std::uint64_t tag = tag_of(addr);

  std::size_t victim = 0;
  std::uint64_t victim_lru = ~0ULL;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      return true;
    }
    if (!line.valid) {
      victim = w;
      victim_lru = 0;
    } else if (line.lru < victim_lru) {
      victim = w;
      victim_lru = line.lru;
    }
  }

  ++misses_;
  Line& line = lines_[base + victim];
  line.valid = true;
  line.tag = tag;
  line.lru = tick_;
  return false;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::size_t base = set_of(addr) * config_.ways;
  const std::uint64_t tag = tag_of(addr);
  for (std::size_t w = 0; w < config_.ways; ++w) {
    const Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  for (Line& line : lines_) line.valid = false;
}

void SetAssocCache::save_state(CheckpointWriter& out) const {
  out.u64(lines_.size());
  for (const Line& line : lines_) {
    out.u64(line.tag);
    out.u64(line.lru);
    out.boolean(line.valid);
  }
  out.u64(tick_);
  out.u64(accesses_);
  out.u64(misses_);
}

void SetAssocCache::restore_state(CheckpointReader& in) {
  const std::uint64_t count = in.u64();
  if (!in.ok() || count != lines_.size()) {
    in.fail("cache geometry mismatch");
    return;
  }
  for (Line& line : lines_) {
    line.tag = in.u64();
    line.lru = in.u64();
    line.valid = in.boolean();
  }
  tick_ = in.u64();
  accesses_ = in.u64();
  misses_ = in.u64();
}

}  // namespace ringclu
