#include "steer/ssa_steering.h"

#include "util/assert.h"

namespace ringclu {

SteerDecision SimpleSteering::steer(const SteerRequest& request,
                                    const SteerContext& context) {
  if (!request.srcs.empty()) {
    // Lowest-index cluster that stores (or will store) the leftmost operand.
    const std::uint32_t mapped =
        context.values->info(request.srcs[0]).mapped_mask;
    RINGCLU_ASSERT(mapped != 0);
    int cluster = 0;
    while (((mapped >> cluster) & 1u) == 0) ++cluster;

    SteerDecision plan;
    if (!plan_candidate(request, cluster, context, plan)) {
      return SteerDecision::stalled();  // chosen cluster full -> stall
    }
    return plan;
  }

  // No input operands: round robin, advancing only on successful placement.
  SteerDecision plan;
  if (!plan_candidate(request, round_robin_, context, plan)) {
    return SteerDecision::stalled();
  }
  round_robin_ = (round_robin_ + 1) % num_clusters_;
  return plan;
}

}  // namespace ringclu
