#include "steer/steer_common.h"

#include <bit>

#include "util/assert.h"

namespace ringclu {

CommPlanStep plan_operand(ValueId value, int cluster,
                          const SteerContext& context) {
  const ValueInfo& info = context.values->info(value);
  if (info.mapped_in(cluster)) return CommPlanStep{0, -1};

  CommPlanStep best{INT32_MAX, -1};
  for (int s = 0; s < context.num_clusters; ++s) {
    if (!info.mapped_in(s)) continue;
    const int distance = context.buses->min_distance(s, cluster);
    if (distance < best.distance) best = CommPlanStep{distance, s};
  }
  RINGCLU_ASSERT(best.from_cluster >= 0);  // every live value is mapped
  return best;
}

void SteerPlanCache::build(const SteerRequest& request,
                           const SteerContext& context) {
  const ValueMap& values = *context.values;
  const BusSet& buses = *context.buses;
  for (std::size_t i = 0; i < request.srcs.size(); ++i) {
    const ValueInfo& info = values.info(request.srcs[i]);
    std::array<CommPlanStep, kMaxClusters>& row = steps_[i];
    for (int c = 0; c < context.num_clusters; ++c) {
      if (info.mapped_in(c)) {
        row[static_cast<std::size_t>(c)] = CommPlanStep{0, -1};
        continue;
      }
      CommPlanStep best{INT32_MAX, -1};
      // Ascending source order with strict improvement: the same
      // lowest-index-among-equals tie-break as plan_operand.
      for (std::uint32_t mask = info.mapped_mask; mask != 0;
           mask &= mask - 1) {
        const int s = std::countr_zero(mask);
        const int distance = buses.min_distance(s, c);
        if (distance < best.distance) best = CommPlanStep{distance, s};
      }
      RINGCLU_ASSERT(best.from_cluster >= 0);  // every live value is mapped
      row[static_cast<std::size_t>(c)] = best;
    }
  }
}

namespace {

/// Shared plan_candidate body; \p step(i) yields the CommPlanStep for
/// operand i at \p cluster (cached or computed on the fly).
template <typename StepFn>
bool plan_candidate_impl(const SteerRequest& request, int cluster,
                         const SteerContext& context, StepFn step,
                         SteerDecision& decision) {
  const SteerOracle& oracle = *context.oracle;

  if (!oracle.iq_can_accept(cluster, op_unit(request.cls))) return false;

  decision.comms.clear();

  // Register needs per (cluster, class); at most three groups: destination
  // plus up to two operand copies.
  struct Need {
    int cluster;
    RegClass cls;
    int count;
  };
  StaticVector<Need, 3> needs;
  auto add_need = [&needs](int c, RegClass cls) {
    for (Need& need : needs) {
      if (need.cluster == c && need.cls == cls) {
        ++need.count;
        return;
      }
    }
    needs.push_back(Need{c, cls, 1});
  };

  if (request.has_dst) {
    add_need(dest_home_cluster(context.arch, cluster, context.num_clusters),
             request.dst_cls);
  }

  // Comm-queue needs per source cluster.
  StaticVector<int, kMaxSrcOperands> comm_sources;
  for (std::size_t i = 0; i < request.srcs.size(); ++i) {
    const CommPlanStep plan = step(i);
    if (plan.from_cluster < 0) continue;  // operand already mapped here
    decision.comms.push_back(
        SteerComm{static_cast<std::uint8_t>(i),
                  static_cast<std::uint8_t>(plan.from_cluster)});
    add_need(cluster, request.src_cls[i]);
    comm_sources.push_back(plan.from_cluster);
  }

  for (const Need& need : needs) {
    if (!oracle.regs_obtainable(need.cluster, need.cls, need.count)) {
      return false;
    }
  }

  for (std::size_t i = 0; i < comm_sources.size(); ++i) {
    int required = 1;
    for (std::size_t j = 0; j < i; ++j) {
      if (comm_sources[j] == comm_sources[i]) ++required;
    }
    if (oracle.comm_free_entries(comm_sources[i]) < required) return false;
  }

  decision.stall = false;
  decision.cluster = cluster;
  return true;
}

}  // namespace

bool plan_candidate(const SteerRequest& request, int cluster,
                    const SteerContext& context, SteerDecision& decision) {
  return plan_candidate_impl(
      request, cluster, context,
      [&](std::size_t i) {
        return plan_operand(request.srcs[i], cluster, context);
      },
      decision);
}

bool plan_candidate(const SteerRequest& request, int cluster,
                    const SteerContext& context, const SteerPlanCache& plans,
                    SteerDecision& decision) {
  return plan_candidate_impl(
      request, cluster, context,
      [&](std::size_t i) { return plans.step(i, cluster); }, decision);
}

int total_comm_distance(const SteerRequest& request, int cluster,
                        const SteerContext& context) {
  int total = 0;
  for (std::size_t i = 0; i < request.srcs.size(); ++i) {
    total += plan_operand(request.srcs[i], cluster, context).distance;
  }
  return total;
}

int longest_comm_distance(const SteerRequest& request, int cluster,
                          const SteerContext& context) {
  int longest = 0;
  for (std::size_t i = 0; i < request.srcs.size(); ++i) {
    longest = std::max(longest,
                       plan_operand(request.srcs[i], cluster, context).distance);
  }
  return longest;
}

int free_reg_score(const SteerRequest& request, int cluster,
                   const SteerContext& context) {
  if (request.has_dst) {
    return context.oracle->free_regs(
        dest_home_cluster(context.arch, cluster, context.num_clusters),
        request.dst_cls);
  }
  return context.oracle->free_regs_total(cluster);
}

}  // namespace ringclu
