#pragma once

/// \file conv_steering.h
/// The state-of-the-art conventional steering used as the paper's baseline
/// (Section 4.1, after Parcerisa et al. PACT'02):
///
///   if workload imbalance > threshold:
///       choose the least loaded cluster (lowest DCOUNT);
///   else:
///       if any source operand is pending (not yet produced):
///           candidate clusters = where the pending operand(s) will be
///           produced (to catch the intra-cluster bypass);
///       else if the instruction has source operands:
///           candidate clusters = those minimizing the longest
///           communication distance;
///       else:
///           all clusters;
///       choose the least loaded candidate (lowest DCOUNT).

#include "steer/dcount.h"
#include "steer/steer_common.h"
#include "steer/steering.h"

namespace ringclu {

class ConvSteering final : public SteeringPolicy {
 public:
  ConvSteering(int num_clusters, int dcount_threshold)
      : num_clusters_(num_clusters),
        threshold_(dcount_threshold),
        dcount_(num_clusters) {}

  [[nodiscard]] SteerDecision steer(const SteerRequest& request,
                                    const SteerContext& context) override;

  void on_dispatch(int cluster) override { dcount_.on_dispatch(cluster); }

  [[nodiscard]] std::string_view name() const override {
    return "conv_dcount";
  }

  [[nodiscard]] const DcountTracker& dcount() const { return dcount_; }

  void save_state(CheckpointWriter& out) const override {
    dcount_.save_state(out);
  }

  void restore_state(CheckpointReader& in) override {
    dcount_.restore_state(in);
  }

 private:
  /// Least-loaded viable cluster within \p candidate_mask.
  [[nodiscard]] SteerDecision select_least_loaded(
      const SteerRequest& request, const SteerContext& context,
      std::uint32_t candidate_mask);

  int num_clusters_;  // ckpt: derived (config)
  int threshold_;  // ckpt: derived (config)
  DcountTracker dcount_;
  /// Per-request plan table (steer_common.h); rebuilt by every steer()
  /// call, so it carries no cross-instruction state and is not serialized.
  SteerPlanCache plans_;  // ckpt: derived (per-request scratch)
};

}  // namespace ringclu
