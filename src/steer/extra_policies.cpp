#include "steer/extra_policies.h"

namespace ringclu {

SteerDecision RoundRobinSteering::steer(const SteerRequest& request,
                                        const SteerContext& context) {
  // Try the round-robin cluster first, then successors, so a single full
  // cluster does not wedge dispatch.
  for (int offset = 0; offset < num_clusters_; ++offset) {
    const int cluster = (next_ + offset) % num_clusters_;
    SteerDecision plan;
    if (plan_candidate(request, cluster, context, plan)) {
      next_ = (cluster + 1) % num_clusters_;
      return plan;
    }
  }
  return SteerDecision::stalled();
}

SteerDecision RandomSteering::steer(const SteerRequest& request,
                                    const SteerContext& context) {
  const int start =
      static_cast<int>(rng_.uniform(static_cast<std::uint64_t>(num_clusters_)));
  for (int offset = 0; offset < num_clusters_; ++offset) {
    const int cluster = (start + offset) % num_clusters_;
    SteerDecision plan;
    if (plan_candidate(request, cluster, context, plan)) return plan;
  }
  return SteerDecision::stalled();
}

}  // namespace ringclu
