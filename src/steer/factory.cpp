#include "steer/conv_steering.h"
#include "steer/extra_policies.h"
#include "steer/registry.h"
#include "steer/ring_steering.h"
#include "steer/ssa_steering.h"
#include "steer/steering.h"
#include "util/assert.h"

namespace ringclu {

void register_builtin_steering_policies(SteeringRegistry& registry) {
  // "enhanced" is the only name whose meaning depends on the machine: the
  // paper's Ring steering (§3.1) or the Conv DCOUNT baseline (§4.1).
  registry.register_policy(
      "enhanced", [](const SteerFactoryArgs& args) {
        if (args.arch == ArchKind::Ring) {
          return std::unique_ptr<SteeringPolicy>(
              std::make_unique<RingSteering>(args.num_clusters));
        }
        return std::unique_ptr<SteeringPolicy>(std::make_unique<ConvSteering>(
            args.num_clusters, args.dcount_threshold));
      });
  registry.register_policy("ssa", [](const SteerFactoryArgs& args) {
    return std::unique_ptr<SteeringPolicy>(
        std::make_unique<SimpleSteering>(args.num_clusters));
  });
  registry.register_policy("round_robin", [](const SteerFactoryArgs& args) {
    return std::unique_ptr<SteeringPolicy>(
        std::make_unique<RoundRobinSteering>(args.num_clusters));
  });
  registry.register_policy("random", [](const SteerFactoryArgs& args) {
    return std::unique_ptr<SteeringPolicy>(
        std::make_unique<RandomSteering>(args.num_clusters, args.seed));
  });
}

// Compatibility shim: the closed-enum factory the pre-registry call sites
// use.  Every enum value maps onto its registered name, so enum and
// string callers construct identical policy objects.
std::unique_ptr<SteeringPolicy> make_steering_policy(SteerAlgo algo,
                                                     ArchKind arch,
                                                     int num_clusters,
                                                     int dcount_threshold,
                                                     std::uint64_t seed) {
  return SteeringRegistry::global().create(
      steer_algo_name(algo),
      SteerFactoryArgs{arch, num_clusters, dcount_threshold, seed});
}

}  // namespace ringclu
