#include "steer/conv_steering.h"
#include "steer/extra_policies.h"
#include "steer/ring_steering.h"
#include "steer/ssa_steering.h"
#include "steer/steering.h"
#include "util/assert.h"

namespace ringclu {

std::unique_ptr<SteeringPolicy> make_steering_policy(SteerAlgo algo,
                                                     ArchKind arch,
                                                     int num_clusters,
                                                     int dcount_threshold,
                                                     std::uint64_t seed) {
  switch (algo) {
    case SteerAlgo::Enhanced:
      if (arch == ArchKind::Ring) {
        return std::make_unique<RingSteering>(num_clusters);
      }
      return std::make_unique<ConvSteering>(num_clusters, dcount_threshold);
    case SteerAlgo::Simple:
      return std::make_unique<SimpleSteering>(num_clusters);
    case SteerAlgo::RoundRobin:
      return std::make_unique<RoundRobinSteering>(num_clusters);
    case SteerAlgo::Random:
      return std::make_unique<RandomSteering>(num_clusters, seed);
  }
  RINGCLU_UNREACHABLE("unknown steering algorithm");
}

}  // namespace ringclu
