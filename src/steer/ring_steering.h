#pragma once

/// \file ring_steering.h
/// The paper's dependence-based steering for the ring clustered machine
/// (Section 3.1):
///
///   0 source operands : cluster with the most free registers.
///   1 source operand  : among clusters where the operand is mapped, the
///                       one with the most free registers.
///   2 source operands : if some cluster maps both, the one of those with
///                       the most free registers; otherwise, among clusters
///                       mapping exactly one operand, the one with the
///                       shortest communication distance for the other
///                       operand (ties: most free registers).
///   Chosen cluster full -> dispatch stalls.
///
/// "Free registers" counts the cluster that will hold the destination
/// (candidate+1 in the ring), which reproduces the paper's Figure 2 worked
/// example.  Because a two-operand instruction is always placed where at
/// least one operand is mapped, no instruction ever needs two
/// communications — and the horizontal slicing of the dependence graph
/// balances the workload with no explicit mechanism.

#include "core/checkpoint.h"
#include "steer/steer_common.h"
#include "steer/steering.h"

namespace ringclu {

class RingSteering final : public SteeringPolicy {
 public:
  explicit RingSteering(int num_clusters) : num_clusters_(num_clusters) {}

  [[nodiscard]] SteerDecision steer(const SteerRequest& request,
                                    const SteerContext& context) override;

  void on_dispatch(int cluster) override;

  [[nodiscard]] std::string_view name() const override {
    return "ring_dependence";
  }

  void save_state(CheckpointWriter& out) const override {
    out.i64(rotate_);
  }

  void restore_state(CheckpointReader& in) override {
    rotate_ = static_cast<int>(in.i64());
  }

 private:
  /// Picks the best viable cluster from \p candidate_mask using
  /// (min distance_key, max free-reg score, round-robin) ordering and plans
  /// its communications.  distance_key is 0 for rules that ignore distance.
  [[nodiscard]] SteerDecision select(const SteerRequest& request,
                                     const SteerContext& context,
                                     std::uint32_t candidate_mask,
                                     bool use_distance);

  int num_clusters_;  // ckpt: derived (config)
  int rotate_ = 0;  ///< round-robin tie-break state
  /// Per-request plan table (steer_common.h); rebuilt by every steer()
  /// call, so it carries no cross-instruction state and is not serialized.
  SteerPlanCache plans_;  // ckpt: derived (per-request scratch)
};

}  // namespace ringclu
