#pragma once

/// \file extra_policies.h
/// Ablation steering policies that are not in the paper: strict round-robin
/// (perfect balance, dependence-blind) and uniformly random placement.
/// They bound the design space the paper's Figure 6/13 comparisons live in.

#include "core/checkpoint.h"
#include "steer/steer_common.h"
#include "steer/steering.h"
#include "util/rng.h"

namespace ringclu {

/// Dependence-blind round-robin: maximal balance, maximal communication.
class RoundRobinSteering final : public SteeringPolicy {
 public:
  explicit RoundRobinSteering(int num_clusters)
      : num_clusters_(num_clusters) {}

  [[nodiscard]] SteerDecision steer(const SteerRequest& request,
                                    const SteerContext& context) override;

  [[nodiscard]] std::string_view name() const override {
    return "round_robin";
  }

  void save_state(CheckpointWriter& out) const override { out.i64(next_); }

  void restore_state(CheckpointReader& in) override {
    next_ = static_cast<int>(in.i64());
  }

 private:
  int num_clusters_;  // ckpt: derived (config)
  int next_ = 0;
};

/// Uniformly random placement among viable clusters.
class RandomSteering final : public SteeringPolicy {
 public:
  RandomSteering(int num_clusters, std::uint64_t seed)
      : num_clusters_(num_clusters), rng_(seed) {}

  [[nodiscard]] SteerDecision steer(const SteerRequest& request,
                                    const SteerContext& context) override;

  [[nodiscard]] std::string_view name() const override { return "random"; }

  void save_state(CheckpointWriter& out) const override {
    for (std::uint64_t word : rng_.state()) out.u64(word);
  }

  void restore_state(CheckpointReader& in) override {
    std::uint64_t words[4];
    for (std::uint64_t& word : words) word = in.u64();
    rng_.set_state(words);
  }

 private:
  int num_clusters_;  // ckpt: derived (config)
  Rng rng_;
};

}  // namespace ringclu
