#pragma once

/// \file extra_policies.h
/// Ablation steering policies that are not in the paper: strict round-robin
/// (perfect balance, dependence-blind) and uniformly random placement.
/// They bound the design space the paper's Figure 6/13 comparisons live in.

#include "steer/steer_common.h"
#include "steer/steering.h"
#include "util/rng.h"

namespace ringclu {

/// Dependence-blind round-robin: maximal balance, maximal communication.
class RoundRobinSteering final : public SteeringPolicy {
 public:
  explicit RoundRobinSteering(int num_clusters)
      : num_clusters_(num_clusters) {}

  [[nodiscard]] SteerDecision steer(const SteerRequest& request,
                                    const SteerContext& context) override;

  [[nodiscard]] std::string_view name() const override {
    return "round_robin";
  }

 private:
  int num_clusters_;
  int next_ = 0;
};

/// Uniformly random placement among viable clusters.
class RandomSteering final : public SteeringPolicy {
 public:
  RandomSteering(int num_clusters, std::uint64_t seed)
      : num_clusters_(num_clusters), rng_(seed) {}

  [[nodiscard]] SteerDecision steer(const SteerRequest& request,
                                    const SteerContext& context) override;

  [[nodiscard]] std::string_view name() const override { return "random"; }

 private:
  int num_clusters_;
  Rng rng_;
};

}  // namespace ringclu
