#pragma once

/// \file steer_common.h
/// Helpers shared by the steering policies: candidate viability (capacity
/// checks plus communication planning) and distance computations.

#include <array>

#include "steer/steering.h"

namespace ringclu {

/// Shortest bus distance from any cluster where \p value is mapped to
/// \p cluster; 0 when mapped in \p cluster itself.  Also reports the best
/// source cluster (lowest index among equals).
struct CommPlanStep {
  int distance = 0;
  int from_cluster = -1;  ///< -1 when no communication is needed
};

[[nodiscard]] CommPlanStep plan_operand(ValueId value, int cluster,
                                        const SteerContext& context);

/// The full (operand x cluster) CommPlanStep table for one steering
/// request, computed in a single pass over the value map.  Multi-pass
/// policies (Conv's imbalance / pending / distance stages, Ring's
/// distance-then-select) build it once per request and read every
/// subsequent plan_operand answer from here instead of redoing the cluster
/// scan per candidate per stage.  Entries are identical to what
/// plan_operand returns (same ascending-cluster tie-break), so cached and
/// uncached policies produce byte-equal decision streams.
class SteerPlanCache {
 public:
  /// Recomputes the table for \p request against the current value map.
  void build(const SteerRequest& request, const SteerContext& context);

  /// The cached plan_operand(request.srcs[operand], cluster) answer.
  [[nodiscard]] const CommPlanStep& step(std::size_t operand,
                                         int cluster) const {
    return steps_[operand][static_cast<std::size_t>(cluster)];
  }

  /// Sum of communication distances \p request would incur at \p cluster.
  [[nodiscard]] int total_distance(const SteerRequest& request,
                                   int cluster) const {
    int total = 0;
    for (std::size_t i = 0; i < request.srcs.size(); ++i) {
      total += step(i, cluster).distance;
    }
    return total;
  }

  /// Longest single-operand communication distance at \p cluster.
  [[nodiscard]] int longest_distance(const SteerRequest& request,
                                     int cluster) const {
    int longest = 0;
    for (std::size_t i = 0; i < request.srcs.size(); ++i) {
      const int distance = step(i, cluster).distance;
      if (distance > longest) longest = distance;
    }
    return longest;
  }

 private:
  std::array<std::array<CommPlanStep, kMaxClusters>, kMaxSrcOperands> steps_;
};

/// Checks whether \p cluster can accept \p request: issue-queue entry,
/// destination register at the dest-home cluster, and a copy register plus
/// a comm-queue entry for every operand not mapped at \p cluster.  On
/// success fills \p decision with the cluster and planned comms.
[[nodiscard]] bool plan_candidate(const SteerRequest& request, int cluster,
                                  const SteerContext& context,
                                  SteerDecision& decision);

/// As above, reading operand plans from \p plans (built for this request)
/// instead of rescanning the value map per operand.
[[nodiscard]] bool plan_candidate(const SteerRequest& request, int cluster,
                                  const SteerContext& context,
                                  const SteerPlanCache& plans,
                                  SteerDecision& decision);

/// Sum of communication distances \p request would incur at \p cluster.
[[nodiscard]] int total_comm_distance(const SteerRequest& request, int cluster,
                                      const SteerContext& context);

/// Longest single-operand communication distance at \p cluster (the Conv
/// criterion: "clusters that minimize the longest communication distance").
[[nodiscard]] int longest_comm_distance(const SteerRequest& request,
                                        int cluster,
                                        const SteerContext& context);

/// The free-register score used by the Ring policy's "more free registers"
/// rule: free registers of the destination class in the cluster that will
/// hold the destination (candidate+1 for Ring — see the paper's Figure 2
/// example), or total free registers when the instruction has no
/// destination.
[[nodiscard]] int free_reg_score(const SteerRequest& request, int cluster,
                                 const SteerContext& context);

}  // namespace ringclu
