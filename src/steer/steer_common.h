#pragma once

/// \file steer_common.h
/// Helpers shared by the steering policies: candidate viability (capacity
/// checks plus communication planning) and distance computations.

#include "steer/steering.h"

namespace ringclu {

/// Shortest bus distance from any cluster where \p value is mapped to
/// \p cluster; 0 when mapped in \p cluster itself.  Also reports the best
/// source cluster (lowest index among equals).
struct CommPlanStep {
  int distance = 0;
  int from_cluster = -1;  ///< -1 when no communication is needed
};

[[nodiscard]] CommPlanStep plan_operand(ValueId value, int cluster,
                                        const SteerContext& context);

/// Checks whether \p cluster can accept \p request: issue-queue entry,
/// destination register at the dest-home cluster, and a copy register plus
/// a comm-queue entry for every operand not mapped at \p cluster.  On
/// success fills \p decision with the cluster and planned comms.
[[nodiscard]] bool plan_candidate(const SteerRequest& request, int cluster,
                                  const SteerContext& context,
                                  SteerDecision& decision);

/// Sum of communication distances \p request would incur at \p cluster.
[[nodiscard]] int total_comm_distance(const SteerRequest& request, int cluster,
                                      const SteerContext& context);

/// Longest single-operand communication distance at \p cluster (the Conv
/// criterion: "clusters that minimize the longest communication distance").
[[nodiscard]] int longest_comm_distance(const SteerRequest& request,
                                        int cluster,
                                        const SteerContext& context);

/// The free-register score used by the Ring policy's "more free registers"
/// rule: free registers of the destination class in the cluster that will
/// hold the destination (candidate+1 for Ring — see the paper's Figure 2
/// example), or total free registers when the instruction has no
/// destination.
[[nodiscard]] int free_reg_score(const SteerRequest& request, int cluster,
                                 const SteerContext& context);

}  // namespace ringclu
