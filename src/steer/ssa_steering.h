#pragma once

/// \file ssa_steering.h
/// The Simple Steering Algorithm of Section 4.7 — rename-logic complexity,
/// no explicit workload-balance control:
///
///   if the instruction has at least one input operand:
///       send it to the lowest-index cluster that stores (or will store)
///       its leftmost operand;
///   else:
///       send it to a cluster in round-robin fashion.
///
/// The same policy object serves both machines; the Ring machine's inherent
/// balance (and Conv's collapse onto a few clusters) emerges from the value
/// homes, not from the policy.

#include "core/checkpoint.h"
#include "steer/steer_common.h"
#include "steer/steering.h"

namespace ringclu {

class SimpleSteering final : public SteeringPolicy {
 public:
  explicit SimpleSteering(int num_clusters) : num_clusters_(num_clusters) {}

  [[nodiscard]] SteerDecision steer(const SteerRequest& request,
                                    const SteerContext& context) override;

  [[nodiscard]] std::string_view name() const override { return "ssa"; }

  void save_state(CheckpointWriter& out) const override {
    out.i64(round_robin_);
  }

  void restore_state(CheckpointReader& in) override {
    round_robin_ = static_cast<int>(in.i64());
  }

 private:
  int num_clusters_;  // ckpt: derived (config)
  int round_robin_ = 0;
};

}  // namespace ringclu
