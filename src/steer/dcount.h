#pragma once

/// \file dcount.h
/// DCOUNT workload-imbalance tracker used by the Conv baseline's steering
/// (Parcerisa & González; see DESIGN.md for the approximation note).
///
/// Each cluster keeps a signed counter of its deviation from a perfectly
/// uniform dispatch share: dispatching to cluster i adds (N-1) to dc[i] and
/// subtracts 1 from every other counter, so the sum stays at zero.
/// Counters saturate so that ancient history cannot dominate.  The
/// imbalance figure is (max - min) / N, in instructions.

#include <cstdint>
#include <vector>

#include "core/checkpoint.h"
#include "util/assert.h"

namespace ringclu {

class DcountTracker {
 public:
  /// \p saturation bounds each counter to +/- saturation*N.
  explicit DcountTracker(int num_clusters, int saturation = 512);

  void on_dispatch(int cluster);

  /// (max - min) / N, in instruction units.
  [[nodiscard]] double imbalance() const;

  /// Counter value for a cluster (lower = less loaded).
  [[nodiscard]] std::int64_t count(int cluster) const {
    RINGCLU_EXPECTS(cluster >= 0 && cluster < num_clusters());
    return counters_[static_cast<std::size_t>(cluster)];
  }

  /// Cluster with the lowest DCOUNT (ties: lowest index).
  [[nodiscard]] int least_loaded() const;

  [[nodiscard]] int num_clusters() const {
    return static_cast<int>(counters_.size());
  }

  void reset();

  void save_state(CheckpointWriter& out) const { out.vec_i64(counters_); }

  void restore_state(CheckpointReader& in) {
    const std::size_t size = counters_.size();
    in.vec_i64(counters_);
    if (in.ok() && counters_.size() != size) {
      in.fail("dcount size mismatch");
    }
  }

 private:
  std::vector<std::int64_t> counters_;
  std::int64_t limit_;  // ckpt: derived (config)
};

}  // namespace ringclu
