#pragma once

/// \file registry.h
/// String-keyed steering-policy registry: the open extension point behind
/// ArchConfig's policy names.
///
/// The four built-in policies ("enhanced", "ssa", "round_robin", "random")
/// register themselves the first time the registry is touched; an external
/// policy plugs in with one call and no core-header edit:
///
///   SteeringRegistry::global().register_policy(
///       "my_policy", [](const SteerFactoryArgs& args) {
///         return std::make_unique<MySteering>(args.num_clusters);
///       });
///
/// Configuration files and the CLI then name it like any built-in
/// ("steer": "my_policy").  The legacy SteerAlgo enum survives as a thin
/// compatibility shim (steering.h's make_steering_policy routes through
/// this registry), so existing call sites and all golden results are
/// untouched.  See DESIGN.md §9.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "steer/steering.h"

namespace ringclu {

/// Everything a policy factory may consume.  Factories ignore what they
/// don't need: \p dcount_threshold only matters to Conv's DCOUNT policy,
/// \p seed only to randomized policies.
struct SteerFactoryArgs {
  ArchKind arch = ArchKind::Ring;
  int num_clusters = 0;
  int dcount_threshold = 8;
  std::uint64_t seed = 0;
};

/// Thread-safe name -> factory registry.  One process-wide instance.
class SteeringRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<SteeringPolicy>(const SteerFactoryArgs&)>;

  /// The process-wide registry, with the built-ins already registered.
  [[nodiscard]] static SteeringRegistry& global();

  /// Registers \p factory under \p name.  Aborts on a duplicate name or an
  /// empty name/factory: registration happens at startup, where a silent
  /// overwrite would hide a real collision.
  void register_policy(std::string name, Factory factory);

  /// True when \p name is registered.
  [[nodiscard]] bool contains(std::string_view name) const;

  /// Instantiates the policy registered under \p name.  \pre contains(name)
  /// (aborts otherwise — callers with unvalidated input use try_create).
  [[nodiscard]] std::unique_ptr<SteeringPolicy> create(
      std::string_view name, const SteerFactoryArgs& args) const;

  /// Lenient variant: nullptr when \p name is not registered.
  [[nodiscard]] std::unique_ptr<SteeringPolicy> try_create(
      std::string_view name, const SteerFactoryArgs& args) const;

  /// All registered names, sorted (error messages and --list).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Sorted names joined with ", " — the "valid policies" error suffix.
  [[nodiscard]] std::string names_joined() const;

 private:
  SteeringRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, Factory, std::less<>> policies_;
};

/// Registers the four built-in policies into \p registry.  Defined in
/// factory.cpp (the one TU that names the concrete policy classes);
/// SteeringRegistry::global() calls it exactly once.
void register_builtin_steering_policies(SteeringRegistry& registry);

}  // namespace ringclu
