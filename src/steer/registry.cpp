#include "steer/registry.h"

#include <algorithm>

#include "util/assert.h"
#include "util/format.h"

namespace ringclu {

SteeringRegistry& SteeringRegistry::global() {
  static SteeringRegistry* registry = [] {
    auto* r = new SteeringRegistry();
    // Defined in factory.cpp, next to the policies it registers; going
    // through it here guarantees the built-ins are present before any
    // lookup, regardless of link order.
    register_builtin_steering_policies(*r);
    return r;
  }();
  return *registry;
}

void SteeringRegistry::register_policy(std::string name, Factory factory) {
  RINGCLU_EXPECTS(!name.empty() && "policy name must be non-empty");
  RINGCLU_EXPECTS(factory != nullptr && "policy factory must be callable");
  const std::lock_guard<std::mutex> lock(mutex_);
  const bool inserted =
      policies_.emplace(std::move(name), std::move(factory)).second;
  RINGCLU_EXPECTS(inserted && "steering policy name already registered");
}

bool SteeringRegistry::contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return policies_.find(name) != policies_.end();
}

std::unique_ptr<SteeringPolicy> SteeringRegistry::create(
    std::string_view name, const SteerFactoryArgs& args) const {
  std::unique_ptr<SteeringPolicy> policy = try_create(name, args);
  RINGCLU_EXPECTS(policy != nullptr && "unknown steering policy");
  return policy;
}

std::unique_ptr<SteeringPolicy> SteeringRegistry::try_create(
    std::string_view name, const SteerFactoryArgs& args) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = policies_.find(name);
    if (it == policies_.end()) return nullptr;
    factory = it->second;  // Copy: run the factory outside the lock.
  }
  return factory(args);
}

std::vector<std::string> SteeringRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(policies_.size());
  for (const auto& [name, factory] : policies_) out.push_back(name);
  return out;  // std::map iterates in sorted order.
}

std::string SteeringRegistry::names_joined() const {
  return join(names(), ", ");
}

}  // namespace ringclu
