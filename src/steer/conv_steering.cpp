#include "steer/conv_steering.h"

namespace ringclu {

SteerDecision ConvSteering::select_least_loaded(const SteerRequest& request,
                                                const SteerContext& context,
                                                std::uint32_t candidate_mask) {
  SteerDecision best = SteerDecision::stalled();
  std::int64_t best_load = 0;
  SteerDecision plan;
  for (int c = 0; c < num_clusters_; ++c) {
    if (((candidate_mask >> c) & 1u) == 0) continue;
    const std::int64_t load = dcount_.count(c);
    // A candidate that cannot beat the current best is skipped before the
    // (comparatively expensive) viability check; only would-be winners are
    // planned.  Identical outcome to planning every candidate: losers
    // never replaced best either way.
    if (!best.stall && load >= best_load) continue;
    if (!plan_candidate(request, c, context, plans_, plan)) continue;
    best = plan;
    best_load = load;
  }
  return best;
}

SteerDecision ConvSteering::steer(const SteerRequest& request,
                                  const SteerContext& context) {
  const std::uint32_t all_mask =
      num_clusters_ >= 32 ? 0xffffffffu : ((1u << num_clusters_) - 1u);

  // One value-map pass per request: every plan_operand answer any of the
  // stages below needs comes from this table.
  plans_.build(request, context);

  // Imbalance override: balance first, communications be damned.
  if (dcount_.imbalance() > static_cast<double>(threshold_)) {
    return select_least_loaded(request, context, all_mask);
  }

  const ValueMap& values = *context.values;

  // Pending operands (not yet produced): steer toward their producers.
  std::uint32_t pending_mask = 0;
  for (std::size_t i = 0; i < request.srcs.size(); ++i) {
    const ValueInfo& info = values.info(request.srcs[i]);
    if (!info.produced) pending_mask |= 1u << info.home;
  }
  if (pending_mask != 0) {
    return select_least_loaded(request, context, pending_mask);
  }

  // All operands available: minimize the longest communication distance.
  if (!request.srcs.empty()) {
    int best_distance = INT32_MAX;
    std::uint32_t best_mask = 0;
    for (int c = 0; c < num_clusters_; ++c) {
      const int distance = plans_.longest_distance(request, c);
      if (distance < best_distance) {
        best_distance = distance;
        best_mask = 1u << c;
      } else if (distance == best_distance) {
        best_mask |= 1u << c;
      }
    }
    return select_least_loaded(request, context, best_mask);
  }

  // No source operands: every cluster is a candidate.
  return select_least_loaded(request, context, all_mask);
}

}  // namespace ringclu
