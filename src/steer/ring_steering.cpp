#include "steer/ring_steering.h"

#include "util/assert.h"

namespace ringclu {

SteerDecision RingSteering::select(const SteerRequest& request,
                                   const SteerContext& context,
                                   std::uint32_t candidate_mask,
                                   bool use_distance) {
  SteerDecision best = SteerDecision::stalled();
  int best_distance = INT32_MAX;
  int best_free = -1;
  int best_rotation = INT32_MAX;

  SteerDecision plan;
  for (int c = 0; c < num_clusters_; ++c) {
    if (((candidate_mask >> c) & 1u) == 0) continue;

    const int distance =
        use_distance ? plans_.total_distance(request, c) : 0;
    const int free = free_reg_score(request, c, context);
    const int rotation = (c - rotate_ + num_clusters_) % num_clusters_;

    const bool better =
        distance < best_distance ||
        (distance == best_distance &&
         (free > best_free ||
          (free == best_free && rotation < best_rotation)));
    // Viability is checked only for candidates that would win: losers
    // never replaced best in the plan-first ordering either, so the chosen
    // cluster (and its planned comms) is identical.
    if (!better) continue;
    if (!plan_candidate(request, c, context, plans_, plan)) continue;
    best = plan;
    best_distance = distance;
    best_free = free;
    best_rotation = rotation;
  }
  return best;
}

SteerDecision RingSteering::steer(const SteerRequest& request,
                                  const SteerContext& context) {
  RINGCLU_EXPECTS(context.num_clusters == num_clusters_);
  const ValueMap& values = *context.values;
  plans_.build(request, context);

  const std::uint32_t all_mask =
      num_clusters_ >= 32 ? 0xffffffffu : ((1u << num_clusters_) - 1u);

  switch (request.srcs.size()) {
    case 0:
      return select(request, context, all_mask, /*use_distance=*/false);

    case 1: {
      const std::uint32_t mapped = values.info(request.srcs[0]).mapped_mask;
      RINGCLU_ASSERT(mapped != 0);
      return select(request, context, mapped, /*use_distance=*/false);
    }

    case 2: {
      const std::uint32_t mapped0 = values.info(request.srcs[0]).mapped_mask;
      const std::uint32_t mapped1 = values.info(request.srcs[1]).mapped_mask;
      const std::uint32_t both = mapped0 & mapped1;
      if (both != 0) {
        return select(request, context, both, /*use_distance=*/false);
      }
      // No cluster maps both: pick among clusters mapping exactly one
      // operand, minimizing the communication distance of the other.
      return select(request, context, mapped0 | mapped1,
                    /*use_distance=*/true);
    }

    default:
      RINGCLU_UNREACHABLE("more than two source operands");
  }
}

void RingSteering::on_dispatch(int cluster) {
  (void)cluster;
  rotate_ = (rotate_ + 1) % num_clusters_;
}

}  // namespace ringclu
