#pragma once

/// \file steering.h
/// Steering-policy interface shared by the Ring and Conv machines.
///
/// A policy sees a compact view of the dispatching instruction (operand
/// values and classes), the live value map, the interconnect (for
/// distances) and a capacity oracle provided by the core (issue-queue,
/// comm-queue and register availability).  It returns the chosen cluster
/// plus the communication instructions the choice requires, or "stall".

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "cluster/value_map.h"
#include "interconnect/bus_set.h"
#include "isa/micro_op.h"
#include "isa/op_class.h"
#include "isa/reg.h"
#include "util/static_vector.h"

namespace ringclu {

class CheckpointReader;
class CheckpointWriter;

/// Which machine organization is being simulated.
enum class ArchKind : std::uint8_t { Ring, Conv };

[[nodiscard]] constexpr std::string_view arch_name(ArchKind kind) {
  return kind == ArchKind::Ring ? "Ring" : "Conv";
}

/// Cluster whose register file receives the result of an instruction issued
/// in \p issue_cluster: the next cluster around the ring for the Ring
/// machine (Section 3), the same cluster for Conv.
[[nodiscard]] constexpr int dest_home_cluster(ArchKind kind, int issue_cluster,
                                              int num_clusters) {
  return kind == ArchKind::Ring ? (issue_cluster + 1) % num_clusters
                                : issue_cluster;
}

/// The per-instruction information steering operates on.
struct SteerRequest {
  OpClass cls = OpClass::IntAlu;
  bool has_dst = false;
  RegClass dst_cls = RegClass::Int;
  /// Distinct source values (duplicated operands appear once).
  StaticVector<ValueId, kMaxSrcOperands> srcs;
  StaticVector<RegClass, kMaxSrcOperands> src_cls;
};

/// Capacity oracle implemented by the core.
class SteerOracle {
 public:
  virtual ~SteerOracle() = default;

  /// Can an instruction executing on \p kind units enter \p cluster's queue?
  [[nodiscard]] virtual bool iq_can_accept(int cluster,
                                           UnitKind kind) const = 0;

  /// Free entries in \p cluster's communication queue.
  [[nodiscard]] virtual int comm_free_entries(int cluster) const = 0;

  /// Can \p count registers of class \p cls be obtained in \p cluster
  /// (free now, or freeable by evicting idle copies)?
  [[nodiscard]] virtual bool regs_obtainable(int cluster, RegClass cls,
                                             int count) const = 0;

  /// Free registers right now (the steering tie-break criterion).
  [[nodiscard]] virtual int free_regs(int cluster, RegClass cls) const = 0;
  [[nodiscard]] virtual int free_regs_total(int cluster) const = 0;
};

/// Everything a policy may consult.
struct SteerContext {
  const ValueMap* values = nullptr;
  const BusSet* buses = nullptr;
  const SteerOracle* oracle = nullptr;
  ArchKind arch = ArchKind::Ring;
  int num_clusters = 0;
};

/// One required inter-cluster copy.
struct SteerComm {
  std::uint8_t operand = 0;       ///< index into SteerRequest::srcs
  std::uint8_t from_cluster = 0;  ///< source of the copy
};

/// The outcome of steering one instruction.
struct SteerDecision {
  bool stall = true;
  int cluster = -1;
  StaticVector<SteerComm, kMaxSrcOperands> comms;

  [[nodiscard]] static SteerDecision stalled() { return SteerDecision{}; }
};

/// Steering-policy interface.
class SteeringPolicy {
 public:
  virtual ~SteeringPolicy() = default;

  [[nodiscard]] virtual SteerDecision steer(const SteerRequest& request,
                                            const SteerContext& context) = 0;

  /// Notification that the instruction was dispatched to \p cluster
  /// (updates load-balance state such as DCOUNT).
  virtual void on_dispatch(int cluster) { (void)cluster; }

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Checkpoint hooks.  The defaults serialize nothing — correct only for
  /// stateless policies; every policy with mutable state (rotation
  /// counters, DCOUNT, RNG, ...) must override both, or restored runs will
  /// diverge from cold runs.  The built-in policies all do; externally
  /// registered policies (steer/registry.h) are expected to as well.
  virtual void save_state(CheckpointWriter& out) const { (void)out; }
  virtual void restore_state(CheckpointReader& in) { (void)in; }
};

/// Which steering algorithm to instantiate.
enum class SteerAlgo : std::uint8_t {
  Enhanced,    ///< the paper's main algorithms (Ring §3.1 / Conv §4.1)
  Simple,      ///< SSA (§4.7)
  RoundRobin,  ///< ablation: ignore dependences entirely
  Random,      ///< ablation: uniformly random viable cluster
};

[[nodiscard]] constexpr std::string_view steer_algo_name(SteerAlgo algo) {
  switch (algo) {
    case SteerAlgo::Enhanced: return "enhanced";
    case SteerAlgo::Simple: return "ssa";
    case SteerAlgo::RoundRobin: return "round_robin";
    case SteerAlgo::Random: return "random";
  }
  return "?";
}

/// Inverse of steer_algo_name: nullopt when \p name is not an enum name
/// (it may still be a registered policy — see steer/registry.h).
[[nodiscard]] constexpr std::optional<SteerAlgo> try_steer_algo(
    std::string_view name) {
  if (name == "enhanced") return SteerAlgo::Enhanced;
  if (name == "ssa") return SteerAlgo::Simple;
  if (name == "round_robin") return SteerAlgo::RoundRobin;
  if (name == "random") return SteerAlgo::Random;
  return std::nullopt;
}

/// Factory (compatibility shim over SteeringRegistry — steer/registry.h is
/// the open, string-keyed surface).  \p dcount_threshold only affects
/// Conv+Enhanced; \p seed only affects Random.
[[nodiscard]] std::unique_ptr<SteeringPolicy> make_steering_policy(
    SteerAlgo algo, ArchKind arch, int num_clusters, int dcount_threshold,
    std::uint64_t seed);

}  // namespace ringclu
