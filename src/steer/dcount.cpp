#include "steer/dcount.h"

#include <algorithm>

namespace ringclu {

DcountTracker::DcountTracker(int num_clusters, int saturation)
    : counters_(static_cast<std::size_t>(num_clusters), 0),
      limit_(static_cast<std::int64_t>(saturation) * num_clusters) {
  RINGCLU_EXPECTS(num_clusters >= 1);
  RINGCLU_EXPECTS(saturation >= 1);
}

void DcountTracker::on_dispatch(int cluster) {
  RINGCLU_EXPECTS(cluster >= 0 && cluster < num_clusters());
  const int n = num_clusters();
  for (int c = 0; c < n; ++c) {
    std::int64_t& counter = counters_[static_cast<std::size_t>(c)];
    counter += (c == cluster) ? (n - 1) : -1;
    counter = std::clamp(counter, -limit_, limit_);
  }
}

double DcountTracker::imbalance() const {
  const auto [min_it, max_it] =
      std::minmax_element(counters_.begin(), counters_.end());
  return static_cast<double>(*max_it - *min_it) /
         static_cast<double>(num_clusters());
}

int DcountTracker::least_loaded() const {
  int best = 0;
  for (int c = 1; c < num_clusters(); ++c) {
    if (counters_[static_cast<std::size_t>(c)] <
        counters_[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

void DcountTracker::reset() {
  std::fill(counters_.begin(), counters_.end(), 0);
}

}  // namespace ringclu
