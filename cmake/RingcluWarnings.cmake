# Shared warning configuration.  The whole tree compiles clean under this
# set (verified with GCC 12); keep it strict so regressions surface at the
# first build, not in review.
#
# Usage: target_link_libraries(<target> PRIVATE ringclu::warnings)

add_library(ringclu_warnings INTERFACE)
add_library(ringclu::warnings ALIAS ringclu_warnings)

target_compile_options(ringclu_warnings INTERFACE
  -Wall
  -Wextra
  -Wpedantic
  -Wshadow
  -Wnon-virtual-dtor
  -Wextra-semi
  -Wcast-qual
  -Wdouble-promotion
)
