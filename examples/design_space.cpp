/// \file design_space.cpp
/// Domain example: explore a clustered-machine design space the way an
/// architect would — declare the sweep instead of spelling out every run.
///
/// The ten Table 3 design points are expressed as one declarative
/// ExperimentSpec (harness/experiment.h) — the same JSON grammar
/// `ringclu_sim --sweep` loads from disk — expanded into named points,
/// and submitted as one batch through the asynchronous SimService: the
/// points simulate in parallel on the worker pool and report progress via
/// completion callbacks while the main thread waits.
///
///   ./design_space [benchmark] [instructions]
///
/// Defaults: wupwise, 100000 instructions.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/arch_config.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sim_service.h"
#include "stats/table.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace ringclu;
  const std::string benchmark = argc > 1 ? argv[1] : "wupwise";
  const std::uint64_t instrs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

  std::printf("Design-space sweep on %s (%llu instructions per point)\n\n",
              benchmark.c_str(), static_cast<unsigned long long>(instrs));

  // The whole experiment as one declarative spec: a "preset" axis whose
  // values are the paper's design points, Conv/Ring paired per geometry.
  // Writing this JSON to a file and running `ringclu_sim --sweep` is the
  // command-line spelling of the same thing.
  const std::string spec_json = str_format(
      R"({
        "name": "table3_design_space",
        "axes": [
          {"field": "preset", "values": [
            "Conv_4clus_1bus_2IW", "Ring_4clus_1bus_2IW",
            "Conv_8clus_1bus_1IW", "Ring_8clus_1bus_1IW",
            "Conv_8clus_2bus_1IW", "Ring_8clus_2bus_1IW",
            "Conv_8clus_1bus_2IW", "Ring_8clus_1bus_2IW",
            "Conv_8clus_2bus_2IW", "Ring_8clus_2bus_2IW"]}
        ],
        "benchmarks": ["%s"],
        "run": {"instrs": %llu, "warmup": %llu, "seed": 42}
      })",
      benchmark.c_str(), static_cast<unsigned long long>(instrs),
      static_cast<unsigned long long>(instrs / 10));

  std::vector<std::string> errors;
  const std::optional<ExperimentSpec> spec =
      ExperimentSpec::from_json(spec_json, &errors);
  if (!spec) {
    for (const std::string& error : errors) {
      std::fprintf(stderr, "spec error: %s\n", error.c_str());
    }
    return 1;
  }
  const std::vector<ExperimentPoint> points = spec->expand();

  // Declared before the service: the progress callbacks capture these by
  // reference and can still be running inside ~SimService's worker join.
  std::atomic<std::size_t> completed{0};
  const std::size_t total = points.size();

  SimService service(
      make_result_store(StoreBackend::Memory, "", /*verbose=*/false));
  const RunParams params = spec->resolve_params(RunParams{});

  std::vector<JobHandle> handles = service.submit_batch(
      make_sweep_jobs(points, spec->benchmarks, params));
  for (JobHandle& handle : handles) {
    handle.on_complete([&completed, total](const SimResult& result) {
      std::fprintf(stderr, "  [%zu/%zu] %s done\n",
                   completed.fetch_add(1) + 1, total,
                   result.config_name.c_str());
    });
  }

  std::vector<SimResult> results;
  results.reserve(handles.size());
  for (const JobHandle& handle : handles) {
    if (handle.wait() != JobStatus::Done) {
      std::fprintf(stderr, "job failed: %s\n", handle.error().c_str());
      return 1;
    }
    results.push_back(handle.result());
  }

  // The baseline row is found by name, not position: a reordered preset
  // list (or a dropped job) degrades to an error message, not a bad table.
  const std::string& baseline_name = points.front().name;
  const SimResult* baseline =
      try_find_result(results, baseline_name, benchmark);
  if (baseline == nullptr || baseline->ipc() == 0.0) {
    std::fprintf(stderr, "missing or empty baseline result %s/%s\n",
                 baseline_name.c_str(), benchmark.c_str());
    return 1;
  }
  const double baseline_ipc = baseline->ipc();

  TextTable table({"config", "IPC", "vs baseline", "comms/instr",
                   "avg dist", "contention", "NREADY"});
  for (const ExperimentPoint& point : points) {
    const SimResult* result = try_find_result(results, point.name, benchmark);
    if (result == nullptr) {
      std::fprintf(stderr, "missing result for %s/%s\n", point.name.c_str(),
                   benchmark.c_str());
      return 1;
    }
    table.begin_row();
    table.add_cell(point.name);
    table.add_cell(result->ipc(), 3);
    table.add_cell(pct(result->ipc() / baseline_ipc - 1.0));
    table.add_cell(result->comms_per_instr(), 3);
    table.add_cell(result->avg_comm_distance(), 2);
    table.add_cell(result->avg_comm_contention(), 2);
    table.add_cell(result->nready_avg(), 3);
  }
  std::printf("%s\n", table.render_aligned().c_str());
  std::printf("(baseline for the 'vs baseline' column: %s)\n",
              baseline_name.c_str());
  return 0;
}
