/// \file design_space.cpp
/// Domain example: explore a clustered-machine design space the way an
/// architect would — sweep cluster count, issue width and bus count for
/// both machines on a chosen workload and print IPC plus the communication
/// picture, normalized against a given baseline.
///
///   ./design_space [benchmark] [instructions]
///
/// Defaults: wupwise, 100000 instructions.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/arch_config.h"
#include "core/processor.h"
#include "stats/table.h"
#include "trace/synth/suite.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace ringclu;
  const std::string benchmark = argc > 1 ? argv[1] : "wupwise";
  const std::uint64_t instrs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

  std::printf("Design-space sweep on %s (%llu instructions per point)\n\n",
              benchmark.c_str(), static_cast<unsigned long long>(instrs));

  const std::vector<std::string> presets = {
      "Conv_4clus_1bus_2IW", "Ring_4clus_1bus_2IW",  //
      "Conv_8clus_1bus_1IW", "Ring_8clus_1bus_1IW",  //
      "Conv_8clus_2bus_1IW", "Ring_8clus_2bus_1IW",  //
      "Conv_8clus_1bus_2IW", "Ring_8clus_1bus_2IW",  //
      "Conv_8clus_2bus_2IW", "Ring_8clus_2bus_2IW",  //
  };

  TextTable table({"config", "IPC", "vs baseline", "comms/instr",
                   "avg dist", "contention", "NREADY"});
  double baseline_ipc = 0;
  for (const std::string& preset : presets) {
    auto trace = make_benchmark_trace(benchmark, 42);
    Processor processor(ArchConfig::preset(preset));
    const SimResult result = processor.run(*trace, instrs / 10, instrs);
    if (baseline_ipc == 0) baseline_ipc = result.ipc();
    table.begin_row();
    table.add_cell(preset);
    table.add_cell(result.ipc(), 3);
    table.add_cell(pct(result.ipc() / baseline_ipc - 1.0));
    table.add_cell(result.comms_per_instr(), 3);
    table.add_cell(result.avg_comm_distance(), 2);
    table.add_cell(result.avg_comm_contention(), 2);
    table.add_cell(result.nready_avg(), 3);
  }
  std::printf("%s\n", table.render_aligned().c_str());
  std::printf("(baseline for the 'vs baseline' column: %s)\n",
              presets.front().c_str());
  return 0;
}
