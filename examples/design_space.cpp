/// \file design_space.cpp
/// Domain example: explore a clustered-machine design space the way an
/// architect would — sweep cluster count, issue width and bus count for
/// both machines on a chosen workload and print IPC plus the communication
/// picture, normalized against a given baseline.
///
/// The sweep goes through the asynchronous SimService: all ten design
/// points are submitted as one batch, simulate in parallel on the worker
/// pool, and report progress via completion callbacks while the main
/// thread waits.
///
///   ./design_space [benchmark] [instructions]
///
/// Defaults: wupwise, 100000 instructions.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/arch_config.h"
#include "harness/report.h"
#include "harness/sim_service.h"
#include "stats/table.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace ringclu;
  const std::string benchmark = argc > 1 ? argv[1] : "wupwise";
  const std::uint64_t instrs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

  std::printf("Design-space sweep on %s (%llu instructions per point)\n\n",
              benchmark.c_str(), static_cast<unsigned long long>(instrs));

  const std::vector<std::string> presets = {
      "Conv_4clus_1bus_2IW", "Ring_4clus_1bus_2IW",  //
      "Conv_8clus_1bus_1IW", "Ring_8clus_1bus_1IW",  //
      "Conv_8clus_2bus_1IW", "Ring_8clus_2bus_1IW",  //
      "Conv_8clus_1bus_2IW", "Ring_8clus_1bus_2IW",  //
      "Conv_8clus_2bus_2IW", "Ring_8clus_2bus_2IW",  //
  };

  // Declared before the service: the progress callbacks capture these by
  // reference and can still be running inside ~SimService's worker join.
  std::atomic<std::size_t> completed{0};
  const std::size_t total = presets.size();

  SimService service(
      make_result_store(StoreBackend::Memory, "", /*verbose=*/false));
  const RunParams params{instrs, instrs / 10, /*seed=*/42};

  std::vector<SimJob> jobs;
  for (const std::string& preset : presets) {
    jobs.push_back(SimJob{ArchConfig::preset(preset), benchmark, params});
  }

  std::vector<JobHandle> handles = service.submit_batch(std::move(jobs));
  for (JobHandle& handle : handles) {
    handle.on_complete([&completed, total](const SimResult& result) {
      std::fprintf(stderr, "  [%zu/%zu] %s done\n",
                   completed.fetch_add(1) + 1, total,
                   result.config_name.c_str());
    });
  }

  std::vector<SimResult> results;
  results.reserve(handles.size());
  for (const JobHandle& handle : handles) {
    if (handle.wait() != JobStatus::Done) {
      std::fprintf(stderr, "job failed: %s\n", handle.error().c_str());
      return 1;
    }
    results.push_back(handle.result());
  }

  // The baseline row is found by name, not position: a reordered preset
  // list (or a dropped job) degrades to an error message, not a bad table.
  const SimResult* baseline =
      try_find_result(results, presets.front(), benchmark);
  if (baseline == nullptr || baseline->ipc() == 0.0) {
    std::fprintf(stderr, "missing or empty baseline result %s/%s\n",
                 presets.front().c_str(), benchmark.c_str());
    return 1;
  }
  const double baseline_ipc = baseline->ipc();

  TextTable table({"config", "IPC", "vs baseline", "comms/instr",
                   "avg dist", "contention", "NREADY"});
  for (const std::string& preset : presets) {
    const SimResult* result = try_find_result(results, preset, benchmark);
    if (result == nullptr) {
      std::fprintf(stderr, "missing result for %s/%s\n", preset.c_str(),
                   benchmark.c_str());
      return 1;
    }
    table.begin_row();
    table.add_cell(preset);
    table.add_cell(result->ipc(), 3);
    table.add_cell(pct(result->ipc() / baseline_ipc - 1.0));
    table.add_cell(result->comms_per_instr(), 3);
    table.add_cell(result->avg_comm_distance(), 2);
    table.add_cell(result->avg_comm_contention(), 2);
    table.add_cell(result->nready_avg(), 3);
  }
  std::printf("%s\n", table.render_aligned().c_str());
  std::printf("(baseline for the 'vs baseline' column: %s)\n",
              presets.front().c_str());
  return 0;
}
