/// \file trace_tools.cpp
/// Workload tooling example: capture a synthetic benchmark to a compact
/// binary trace file, replay it through the simulator, and print the
/// instruction-mix profile of every program in the suite.
///
///   ./trace_tools capture <benchmark> <ops> <file>   write a trace file
///   ./trace_tools replay  <file> [preset]            simulate from a file
///   ./trace_tools mix                                 profile the suite

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/processor.h"
#include "stats/table.h"
#include "trace/synth/suite.h"
#include "trace/trace_file.h"
#include "trace/trace_stats.h"

namespace {

using namespace ringclu;

int do_capture(const std::string& benchmark, std::uint64_t ops,
               const std::string& path) {
  auto source = make_benchmark_trace(benchmark, 42);
  TraceFileWriter writer(path);
  MicroOp op;
  for (std::uint64_t i = 0; i < ops && source->next(op); ++i) {
    writer.append(op);
  }
  writer.close();
  std::printf("wrote %llu ops of %s to %s\n",
              static_cast<unsigned long long>(writer.ops_written()),
              benchmark.c_str(), path.c_str());
  return 0;
}

int do_replay(const std::string& path, const std::string& preset) {
  TraceFileReader reader(path);
  Processor processor(ArchConfig::preset(preset));
  const SimResult result =
      processor.run(reader, /*warmup=*/0, reader.total_ops());
  std::printf("%s\n", result.detailed_report().c_str());
  return 0;
}

int do_mix() {
  TextTable table({"benchmark", "class", "fp%", "mem%", "branch%",
                   "taken%", "dep dist"});
  for (const BenchmarkDesc& desc : spec2000_benchmarks()) {
    auto trace = make_benchmark_trace(desc.name, 42);
    const TraceMix mix = profile_trace(*trace, 50000);
    table.begin_row();
    table.add_cell(desc.name);
    table.add_cell(desc.is_fp ? "FP" : "INT");
    table.add_cell(mix.fp_fraction() * 100.0, 1);
    table.add_cell(mix.mem_fraction() * 100.0, 1);
    table.add_cell(mix.branch_fraction() * 100.0, 1);
    const std::uint64_t branches =
        mix.by_class[static_cast<std::size_t>(OpClass::Branch)];
    table.add_cell(branches == 0 ? 0.0
                                 : 100.0 *
                                       static_cast<double>(
                                           mix.branches_taken) /
                                       static_cast<double>(branches),
                   1);
    table.add_cell(mix.mean_dep_distance(), 1);
  }
  std::printf("Suite instruction-mix profile (50k ops per program)\n%s",
              table.render_aligned().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "mix") == 0) return do_mix();
  if (argc >= 5 && std::strcmp(argv[1], "capture") == 0) {
    return do_capture(argv[2], std::strtoull(argv[3], nullptr, 10), argv[4]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "replay") == 0) {
    return do_replay(argv[2],
                     argc >= 4 ? argv[3] : "Ring_8clus_1bus_2IW");
  }
  // Default: a short self-demonstration of all three modes.
  std::printf("usage:\n"
              "  trace_tools capture <benchmark> <ops> <file>\n"
              "  trace_tools replay <file> [preset]\n"
              "  trace_tools mix\n\n"
              "running the self-demo: capture + replay of 30k swim ops\n\n");
  const std::string path = "/tmp/ringclu_demo.rct";
  do_capture("swim", 30000, path);
  do_replay(path, "Ring_8clus_1bus_2IW");
  std::remove(path.c_str());
  return 0;
}
