/// \file steering_walkthrough.cpp
/// Reproduces the paper's Figure 2 worked example interactively: steers the
/// five-instruction sequence through a 4-cluster Ring machine and prints
/// where every value lands, which communications are generated, and the
/// per-cluster register pressure after each step.
///
///   I1. R1 = 1
///   I2. R2 = R1 + 1
///   I3. R3 = R1 + R2
///   I4. R4 = R1 + R3
///   I5. R5 = R1 * 3

#include <cstdio>
#include <map>
#include <string>

#include "cluster/regfile.h"
#include "cluster/value_map.h"
#include "interconnect/bus_set.h"
#include "steer/ring_steering.h"

namespace {

using namespace ringclu;

/// Minimal oracle over a real register file (queues never fill here).
class WalkOracle final : public SteerOracle {
 public:
  explicit WalkOracle(int clusters) : regs_(clusters, 48) {}
  bool iq_can_accept(int, UnitKind) const override { return true; }
  int comm_free_entries(int) const override { return 16; }
  bool regs_obtainable(int cluster, RegClass cls, int count) const override {
    return regs_.free_count(cluster, cls) >= count;
  }
  int free_regs(int cluster, RegClass cls) const override {
    return regs_.free_count(cluster, cls);
  }
  int free_regs_total(int cluster) const override {
    return regs_.free_count(cluster, RegClass::Int) +
           regs_.free_count(cluster, RegClass::Fp);
  }
  RegFileSet regs_;
};

}  // namespace

int main() {
  constexpr int kClusters = 4;
  ValueMap values(kClusters);
  WalkOracle oracle(kClusters);
  BusSet buses(kClusters, 1, BusOrientation::AllForward, 1);
  RingSteering policy(kClusters);

  SteerContext context;
  context.values = &values;
  context.buses = &buses;
  context.oracle = &oracle;
  context.arch = ArchKind::Ring;
  context.num_clusters = kClusters;

  std::map<std::string, ValueId> regs;          // logical reg -> value
  std::map<ValueId, std::string> value_names;   // value -> logical reg

  auto print_map = [&]() {
    for (int c = 0; c < kClusters; ++c) {
      std::printf("    cluster %d holds:", c);
      for (const auto& [value, name] : value_names) {
        if (values.info(value).mapped_in(c)) {
          std::printf(" %s", name.c_str());
        }
      }
      std::printf("  (%d free INT regs)\n",
                  oracle.regs_.free_count(c, RegClass::Int));
    }
  };

  auto dispatch = [&](const std::string& text, const std::string& dst,
                      const std::vector<std::string>& srcs) {
    SteerRequest request;
    request.cls = OpClass::IntAlu;
    request.has_dst = true;
    request.dst_cls = RegClass::Int;
    for (const std::string& src : srcs) {
      const ValueId value = regs.at(src);
      if (!request.srcs.contains(value)) {
        request.srcs.push_back(value);
        request.src_cls.push_back(RegClass::Int);
      }
    }

    const SteerDecision decision = policy.steer(request, context);
    std::printf("%s -> steered to cluster %d", text.c_str(),
                decision.cluster);
    for (const SteerComm& comm : decision.comms) {
      std::printf(", copy %s from cluster %d (%d hop(s))",
                  value_names.at(request.srcs[comm.operand]).c_str(),
                  comm.from_cluster,
                  buses.min_distance(comm.from_cluster, decision.cluster));
      oracle.regs_.allocate(decision.cluster, RegClass::Int);
      values.add_copy(request.srcs[comm.operand], decision.cluster);
      values.set_readable(request.srcs[comm.operand], decision.cluster, 0);
    }
    // Destination value lands in the *next* cluster around the ring.
    const int home =
        dest_home_cluster(ArchKind::Ring, decision.cluster, kClusters);
    oracle.regs_.allocate(home, RegClass::Int);
    const ValueId value = values.create(RegClass::Int, home);
    values.set_readable(value, home, 0);
    values.info(value).produced = true;
    regs[dst] = value;
    value_names[value] = dst;
    policy.on_dispatch(decision.cluster);
    std::printf("; %s now lives in cluster %d\n", dst.c_str(), home);
    print_map();
  };

  std::printf("Ring steering walkthrough (paper Figure 2, 4 clusters)\n\n");
  dispatch("I1. R1 = 1        ", "R1", {});
  dispatch("I2. R2 = R1 + 1   ", "R2", {"R1"});
  dispatch("I3. R3 = R1 + R2  ", "R3", {"R1", "R2"});
  dispatch("I4. R4 = R1 + R3  ", "R4", {"R1", "R3"});
  dispatch("I5. R5 = R1 * 3   ", "R5", {"R1"});

  std::printf(
      "\nNote how the dependence chain snakes around the ring, landing one\n"
      "value per cluster: communication minimization *is* load balancing.\n");
  return 0;
}
