/// \file quickstart.cpp
/// Minimal end-to-end use of the ringclu public API: build a workload,
/// submit the paper's Ring machine and the conventional baseline to the
/// asynchronous SimService, and compare when both complete.  Both jobs
/// run concurrently on the service's worker pool.
///
///   ./quickstart [benchmark] [instructions]
///
/// Defaults: swim, 200000 instructions.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/arch_config.h"
#include "harness/report.h"
#include "harness/sim_service.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace ringclu;
  const std::string benchmark = argc > 1 ? argv[1] : "swim";
  const std::uint64_t instrs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  std::printf("ringclu quickstart: benchmark=%s, %llu instructions\n\n",
              benchmark.c_str(), static_cast<unsigned long long>(instrs));

  // A service over an in-memory store: no cache files, pure simulation.
  SimService service(
      make_result_store(StoreBackend::Memory, "", /*verbose=*/false));

  const RunParams params{instrs, instrs / 10, /*seed=*/42};
  const char* ring_name = "Ring_8clus_1bus_2IW";
  const char* conv_name = "Conv_8clus_1bus_2IW";
  std::vector<JobHandle> handles;
  for (const char* name : {ring_name, conv_name}) {
    handles.push_back(
        service.submit(SimJob{ArchConfig::preset(name), benchmark, params}));
  }

  // Both machines are now simulating in parallel; wait and report.
  std::vector<SimResult> results;
  for (const JobHandle& handle : handles) {
    if (handle.wait() != JobStatus::Done) {
      std::fprintf(stderr, "job failed: %s\n", handle.error().c_str());
      return 1;
    }
    results.push_back(handle.result());
    std::printf("%s\n", results.back().detailed_report().c_str());
  }

  // Pull each machine's result back out by name (graceful lookup: a
  // missing pair reports instead of asserting).
  const SimResult* ring = try_find_result(results, ring_name, benchmark);
  const SimResult* conv = try_find_result(results, conv_name, benchmark);
  if (ring == nullptr || conv == nullptr || conv->ipc() == 0.0) {
    std::fprintf(stderr, "missing or empty result for %s\n",
                 benchmark.c_str());
    return 1;
  }
  std::printf("\nSpeedup (IPC ratio - 1): %s; see bench/fig06 for the full "
              "sweep.\n",
              pct(ring->ipc() / conv->ipc() - 1.0).c_str());
  return 0;
}
