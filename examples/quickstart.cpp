/// \file quickstart.cpp
/// Minimal end-to-end use of the ringclu public API: build a workload,
/// build two machines (the paper's Ring and the conventional baseline),
/// simulate both, and compare.
///
///   ./quickstart [benchmark] [instructions]
///
/// Defaults: swim, 200000 instructions.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/arch_config.h"
#include "core/processor.h"
#include "trace/synth/suite.h"

int main(int argc, char** argv) {
  const std::string benchmark = argc > 1 ? argv[1] : "swim";
  const std::uint64_t instrs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;
  const std::uint64_t warmup = instrs / 10;

  std::printf("ringclu quickstart: benchmark=%s, %llu instructions\n\n",
              benchmark.c_str(), static_cast<unsigned long long>(instrs));

  for (const char* name : {"Ring_8clus_1bus_2IW", "Conv_8clus_1bus_2IW"}) {
    const ringclu::ArchConfig config = ringclu::ArchConfig::preset(name);
    auto trace = ringclu::make_benchmark_trace(benchmark, /*seed=*/42);
    ringclu::Processor processor(config);
    const ringclu::SimResult result = processor.run(*trace, warmup, instrs);
    std::printf("%s\n", result.detailed_report().c_str());
  }

  std::printf("\nSpeedup = IPC(Ring) / IPC(Conv) - 1; see bench/fig06 for "
              "the full sweep.\n");
  return 0;
}
