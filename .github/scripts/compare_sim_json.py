#!/usr/bin/env python3
"""Compares two ringclu_sim --json reports for simulated-number equality.

Host-timing fields (wall clock, rates, amortization bookkeeping) legitimately
differ between a cold run and a checkpoint-restored run; every other field --
cycles, commits, per-cluster counters, IPC -- must be bit-identical.  Exits
non-zero listing the first differing keys otherwise.
"""

import json
import sys

TIMING_MARKERS = ("wall", "seconds", "rate", "ips", "per_second",
                  "amortized", "restored", "host.")


def flatten(value, prefix=""):
    out = {}
    if isinstance(value, dict):
        for key, item in value.items():
            out.update(flatten(item, f"{prefix}{key}."))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            out.update(flatten(item, f"{prefix}{index}."))
    else:
        out[prefix.rstrip(".")] = value
    return out


def simulated_fields(path):
    with open(path, encoding="utf-8") as handle:
        flat = flatten(json.load(handle))
    return {key: value for key, value in flat.items()
            if not any(marker in key.lower() for marker in TIMING_MARKERS)}


def main():
    args = sys.argv[1:]
    ignored = set()
    while "--ignore" in args:
        index = args.index("--ignore")
        if index + 1 >= len(args):
            sys.exit("--ignore needs a flattened key name")
        ignored.add(args[index + 1])
        del args[index:index + 2]
    if len(args) != 2:
        sys.exit(f"usage: {sys.argv[0]} [--ignore key]... <a.json> <b.json>")
    a = simulated_fields(args[0])
    b = simulated_fields(args[1])
    diffs = [key for key in sorted(set(a) | set(b))
             if key not in ignored and a.get(key) != b.get(key)]
    if diffs:
        for key in diffs[:20]:
            print(f"MISMATCH {key}: {a.get(key)!r} != {b.get(key)!r}")
        sys.exit(1)
    print(f"identical simulated numbers ({len(a)} fields compared)")


if __name__ == "__main__":
    main()
