#!/usr/bin/env python3
"""Gates BENCH_throughput.json against a checked-in perf baseline.

Two checks, tuned for noisy shared CI runners:

* The Conv/Ring throughput ratio is host-independent (both configs run in
  the same process on the same machine), so it gets a hard two-sided gate:
  it must stay within --tolerance (default 20%) of the baseline ratio.
  This is the regression the profile-driven steering work is guarding.
* Absolute aggregate instrs/s only gets a floor: the baseline was measured
  on a deliberately slow reference host, so any healthy runner clears
  baseline * (1 - tolerance) easily while a catastrophic slowdown (a
  debug-build leak into Release, an accidental O(n^2) scan) still trips it.
  Beating the baseline by more than the tolerance prints a reminder to
  refresh bench/perf_baseline.json; it never fails the build.

Exit status: 0 on pass, 1 listing every violated gate otherwise.
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def config_ips(report, name):
    for entry in report.get("configs", []):
        if entry.get("name") == name:
            return float(entry["sim_instrs_per_second"])
    sys.exit(f"error: config {name!r} missing from report")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="bench/perf_baseline.json")
    parser.add_argument("measured", help="BENCH_throughput.json from this run")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="fractional gate width (default 0.20)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    measured = load(args.measured)
    tol = args.tolerance
    failures = []

    for key in ("instrs_per_run", "warmup_per_run", "seed", "benchmarks"):
        if baseline.get(key) != measured.get(key):
            failures.append(
                f"workload mismatch: {key} baseline={baseline.get(key)} "
                f"measured={measured.get(key)} (run the bench with the "
                f"baseline's RINGCLU_* settings)")

    base_ring = config_ips(baseline, "Ring_8clus_1bus_2IW")
    base_conv = config_ips(baseline, "Conv_8clus_1bus_2IW")
    meas_ring = config_ips(measured, "Ring_8clus_1bus_2IW")
    meas_conv = config_ips(measured, "Conv_8clus_1bus_2IW")

    base_ratio = base_conv / base_ring
    meas_ratio = meas_conv / meas_ring
    print(f"Conv/Ring ratio: baseline {base_ratio:.3f}, "
          f"measured {meas_ratio:.3f}")
    if not base_ratio * (1 - tol) <= meas_ratio <= base_ratio * (1 + tol):
        failures.append(
            f"Conv/Ring throughput ratio {meas_ratio:.3f} outside "
            f"{base_ratio:.3f} +/- {tol:.0%} — the steering-path cost "
            f"moved relative to Ring")

    base_agg = float(baseline["sim_instrs_per_second"])
    meas_agg = float(measured["sim_instrs_per_second"])
    floor = base_agg * (1 - tol)
    print(f"aggregate instrs/s: baseline {base_agg:,.0f} "
          f"(floor {floor:,.0f}), measured {meas_agg:,.0f}")
    if meas_agg < floor:
        failures.append(
            f"aggregate {meas_agg:,.0f} instrs/s below floor {floor:,.0f} "
            f"(baseline {base_agg:,.0f} - {tol:.0%})")
    elif meas_agg > base_agg * (1 + tol):
        print(f"note: aggregate beats baseline by more than {tol:.0%}; "
              f"consider refreshing bench/perf_baseline.json")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
